"""Batched multi-query execution: shared-leaf scans and matrix kernels.

A workload of Q queries answered one at a time re-descends the tree, re-
reads the same hot leaves, and runs Q independent (1×n) kernel passes.
This engine plans and executes the whole query set together so every
expensive touch is amortized across the queries that need it:

* **Phase 0 — one-pass screening.**  After the per-query descents have
  seeded finite BSFs, ONE vectorized (Q×N) LB_SAX screen runs over the
  in-RAM signature array against the per-query BSF² vector
  (:meth:`~repro.core.prefilter.SignatureArray.screen_batch`: one gather
  + one matmul over tables cached on the array, instead of Q passes).
* **Shared-leaf refinement.**  Descent produces a leaf→{query set}
  access plan; each surviving leaf is read from ``SeriesFile``/
  ``LeafCache`` exactly once and refined with a single blocked
  (Q_leaf × rows) matrix kernel
  (:func:`~repro.distance.euclidean.early_abandon_squared_multi`)
  sharing the row load across queries, with per-query live BSF²
  cutoffs.  Per-query result sets update from the shared distance
  block.
* **Batch-scoped read memoization.**  All leaf reads of the batch —
  including the approximate-descent scans — go through one
  :class:`_BlockStore`, so a leaf touched by many queries is loaded
  once per batch regardless of cache configuration.

**Parity.**  Queries are independent search problems: each keeps its own
:class:`~repro.core.results.ResultSet`, BSF², and profile, and the
engine only re-orders *when* each query's work runs, never the per-query
order itself (leaves are processed in file-position order, exactly as
the serial pipeline does).  For exact search (ε = 0) answers are
order-independent, and the shared matrix kernel re-evaluates survivors
with the same whole-row arithmetic as the single-query kernel — batch
answers are value-identical to serial ones.  For ε-approximate search,
where pruning decisions depend on the BSF at each check, the engine
falls back to a per-query refinement that replicates the serial check
cadence operation-for-operation (the leaf reads still flow through the
shared store, so the I/O sharing survives); answers again match the
single-query path bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.config import HerculesConfig
from repro.core.node import Node
from repro.core.query import (
    _REFINE_BATCH,
    QueryAnswer,
    _approx_knn,
    _find_candidate_leaves,
    _SearchState,
)
from repro.core.results import ResultSet
from repro.distance.euclidean import (
    early_abandon_squared,
    early_abandon_squared_multi,
)
from repro.storage.files import SeriesFile
from repro.summarization.sax import SaxSpace
from repro.types import DISTANCE_DTYPE

__all__ = ["BatchAnswer", "BatchStats", "exact_knn_batch"]


@dataclass
class BatchStats:
    """Batch-level execution metrics of one :func:`exact_knn_batch` call."""

    num_queries: int = 0
    #: Physical leaf-block loads performed for the whole batch.
    unique_leaf_reads: int = 0
    #: Per-query leaf-block touches served by those loads — descent
    #: scans plus refinement reads, summed over queries.
    #: ``leaf_share_factor`` > 1 means leaves were shared across
    #: queries instead of re-read per query.
    leaf_uses: int = 0
    #: Candidate rows the refinement kernels evaluated, summed over
    #: queries (each shared read serves ``kernel_rows_per_read`` rows).
    kernel_rows: int = 0
    #: Wall seconds of the one-pass signature screen (0 with the
    #: pre-filter tier off).
    screen_seconds: float = 0.0
    #: Wall seconds of the whole batch call.
    total_seconds: float = 0.0

    @property
    def leaf_share_factor(self) -> float:
        """Per-query leaf refinements per physical leaf read."""
        if self.unique_leaf_reads <= 0:
            return 0.0
        return self.leaf_uses / self.unique_leaf_reads

    @property
    def kernel_rows_per_read(self) -> float:
        """Kernel row evaluations amortized over each physical read."""
        if self.unique_leaf_reads <= 0:
            return 0.0
        return self.kernel_rows / self.unique_leaf_reads

    @property
    def screen_seconds_per_query(self) -> float:
        if self.num_queries <= 0:
            return 0.0
        return self.screen_seconds / self.num_queries


class BatchAnswer:
    """Per-query :class:`QueryAnswer` sequence plus batch-level stats.

    Behaves like the list of answers the serial loop used to return
    (iteration, indexing, ``len``), with :attr:`stats` riding along.
    """

    def __init__(self, answers: List[QueryAnswer], stats: BatchStats) -> None:
        self.answers = answers
        self.stats = stats

    def __len__(self) -> int:
        return len(self.answers)

    def __getitem__(self, index):
        return self.answers[index]

    def __iter__(self):
        return iter(self.answers)


class _BlockStore:
    """Batch-scoped leaf-block memo: each block is loaded at most once.

    Sits in front of the ``SeriesFile`` (and its optional LeafCache):
    the first query needing a block loads it; every later use within
    the batch is served from the memo, whatever the cache budget is.
    """

    def __init__(self, lrd: SeriesFile) -> None:
        self._lrd = lrd
        self._blocks: dict = {}
        self.loads = 0
        self.shared_hits = 0
        #: Per-query block touches served (every :meth:`leaf_block`
        #: call, plus the extra users of one multi-query kernel pass
        #: via :meth:`count_shared_uses`) — the numerator of the batch
        #: leaf-share factor.
        self.uses = 0

    def leaf_block(self, leaf: Node) -> np.ndarray:
        key = (leaf.file_position, leaf.size)
        self.uses += 1
        block = self._blocks.get(key)
        if block is None:
            block = self._lrd.read_range(leaf.file_position, leaf.size)
            self._blocks[key] = block
            self.loads += 1
        else:
            self.shared_hits += 1
        return block

    def count_shared_uses(self, extra: int) -> None:
        """Credit ``extra`` additional queries served by the last read."""
        self.uses += extra

    def resident(self, leaf: Node) -> bool:
        return (leaf.file_position, leaf.size) in self._blocks


class _BatchSearchState(_SearchState):
    """Per-query search state whose leaf reads flow through the store."""

    def __init__(self, store: _BlockStore, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._store = store
        # The per-query cache delta is meaningless when Q interleaved
        # queries share one cache; per-query sharing is counted on the
        # store instead and written into the profile at the end.
        self._cache_before = None
        self.store_hits = 0
        self.store_misses = 0

    def read_leaf(self, leaf: Node) -> np.ndarray:
        self.profile.series_accessed += leaf.size
        return self._leaf_block(leaf)

    def leaf_rows(self, leaf: Node, rows: np.ndarray) -> np.ndarray:
        """Rows of one leaf block (accounting left to the caller)."""
        return self._leaf_block(leaf)[rows]

    def _leaf_block(self, leaf: Node) -> np.ndarray:
        before = self._store.loads
        block = self._store.leaf_block(leaf)
        if self._store.loads == before:
            self.store_hits += 1
        else:
            self.store_misses += 1
        return block


@dataclass
class _RefineSpec:
    """One query's refinement work, in serial (file-position) order."""

    #: "leaves" — scan whole leaves with a live-BSF re-check (the
    #: skip-sequential and NoSAX paths); "series" — refine per-leaf
    #: candidate rows surviving LB_SAX (the full four-phase path);
    #: "none" — phase 1 already answered the query.
    kind: str = "none"
    #: (leaf, phase-2 bound) pairs for "leaves".
    leaves: list = field(default_factory=list)
    #: (leaf, rows-within-leaf, ε-scaled squared LB_SAX) for "series".
    series: list = field(default_factory=list)


def _plan_refinement(
    state: _BatchSearchState,
    lclist: list,
    config: HerculesConfig,
    num_leaves: int,
    num_series: int,
) -> _RefineSpec:
    """The serial pipeline's access-path decision, emitted as a plan.

    Mirrors :func:`repro.core.query.exact_knn` exactly: the same path is
    chosen from the same pre-screen pruning ratios, and phase 3 produces
    the same candidate rows in the same (file-position) order the
    single-threaded serial pass would.
    """
    spec = _RefineSpec()
    state.profile.candidate_leaves = len(lclist)
    if not lclist:
        state.profile.path = "approx-only"
        return spec
    if (
        config.adaptive_thresholds
        and state.profile.eapca_pruning < config.eapca_th
    ):
        state.profile.path = "eapca-skipseq"
        spec.kind = "leaves"
        spec.leaves = list(lclist)
        return spec
    if not config.use_sax:
        state.profile.path = "nosax-leaves"
        spec.kind = "leaves"
        spec.leaves = list(lclist)
        return spec

    # Phase 3 (FindCandidateSeries), canonical single-thread order:
    # BSF² is fixed for the whole pass, leaves visited in file order.
    bsf_squared = state.results.bsf_squared
    length = state.query.shape[0]
    series: list = []
    total = 0
    for leaf, _bound in lclist:
        words = state.lsd_words[
            leaf.file_position : leaf.file_position + leaf.size
        ]
        bounds = state.sax_space.mindist(state.query_paa, words, length)
        scaled = bounds * state.prune_factor
        scaled_sq = scaled * scaled
        mask = scaled_sq < bsf_squared
        if state.sig_mask is not None:
            mask &= state.sig_mask[
                leaf.file_position : leaf.file_position + leaf.size
            ]
        if mask.any():
            rows = np.nonzero(mask)[0]
            series.append((leaf, rows, scaled_sq[rows]))
            total += rows.shape[0]
    sax_pr = 1.0 - (total / num_series if num_series else 0.0)
    state.profile.candidate_series = total
    state.profile.sax_pruning = sax_pr
    if config.adaptive_thresholds and sax_pr < config.sax_th:
        state.profile.path = "sax-skipseq"
        spec.kind = "leaves"
        spec.leaves = list(lclist)
        return spec
    state.profile.path = "full-four-phase"
    spec.kind = "series"
    spec.series = series
    return spec


def _refine_shared(
    states: List[_BatchSearchState],
    specs: List[_RefineSpec],
    store: _BlockStore,
    stats: BatchStats,
) -> None:
    """Exact-search refinement over the leaf→{query set} plan.

    Leaves are visited once each, in file-position order; all queries
    needing a leaf are refined from one block with a single multi-query
    kernel call under per-query live BSF² cutoffs.  Sound for exact
    search: a per-candidate live re-check can only *skip more* than the
    serial per-chunk re-check, and any skipped candidate has
    LB ≥ BSF ≥ its final value, so it could never have entered a result
    set.
    """
    tasks: dict = {}
    for qi, spec in enumerate(specs):
        if spec.kind == "leaves":
            for leaf, bound in spec.leaves:
                tasks.setdefault(leaf.file_position, (leaf, []))[1].append(
                    (qi, bound, None, None)
                )
        elif spec.kind == "series":
            for leaf, rows, bounds_sq in spec.series:
                tasks.setdefault(leaf.file_position, (leaf, []))[1].append(
                    (qi, None, rows, bounds_sq)
                )

    for file_position in sorted(tasks):
        leaf, users = tasks[file_position]
        active = []
        for qi, bound, rows, bounds_sq in users:
            state = states[qi]
            bsf_squared = state.results.bsf_squared
            if rows is None:
                # Whole-leaf user: the serial skip-sequential re-check.
                if state.scaled_squared(bound) >= bsf_squared:
                    continue
                active.append((qi, None))
            else:
                alive = bounds_sq < bsf_squared
                if not alive.any():
                    continue
                active.append((qi, rows[alive]))
        if not active:
            continue

        was_resident = store.resident(leaf)
        block = store.leaf_block(leaf)
        store.count_shared_uses(len(active) - 1)
        length = block.shape[1]
        queries = np.stack([states[qi].query for qi, _rows in active])
        cutoffs = np.array(
            [states[qi].results.bsf_squared for qi, _rows in active],
            dtype=DISTANCE_DTYPE,
        )
        row_masks = np.zeros((len(active), leaf.size), dtype=bool)
        for i, (_qi, rows) in enumerate(active):
            if rows is None:
                row_masks[i] = True
            else:
                row_masks[i, rows] = True
        distances, points = early_abandon_squared_multi(
            queries, block, cutoffs, row_masks=row_masks
        )

        for i, (qi, rows) in enumerate(active):
            state = states[qi]
            if rows is None:
                row_count = leaf.size
                positions = leaf.file_position + np.arange(
                    leaf.size, dtype=np.int64
                )
                row_distances = distances[i]
            else:
                row_count = rows.shape[0]
                positions = leaf.file_position + rows.astype(np.int64)
                row_distances = distances[i, rows]
            state.results.update_batch_squared(row_distances, positions)
            state.profile.series_accessed += row_count
            state.profile.distance_computations += row_count
            state.profile.points_compared += int(points[i])
            state.profile.points_total += row_count * length
            if i == 0 and not was_resident:
                state.store_misses += 1
            else:
                state.store_hits += 1
            stats.kernel_rows += row_count


def _refine_serial_cadence(
    state: _BatchSearchState, spec: _RefineSpec, store: _BlockStore,
    stats: BatchStats,
) -> None:
    """ε-approximate refinement: the serial pipeline, operation for
    operation, with reads served from the shared store.

    With ε > 0 a pruning decision depends on the BSF at the moment of
    the check, so the batch must replicate the single-query check
    cadence exactly — per-leaf re-checks for the leaf-scan paths,
    :data:`_REFINE_BATCH`-chunked re-checks for the four-phase path —
    to keep answers bit-identical.  Leaf sharing survives through the
    store: the first query touching a leaf loads it, the rest hit.
    """
    length = state.query.shape[0]
    if spec.kind == "leaves":
        for leaf, bound in spec.leaves:
            if state.scaled_squared(bound) >= state.results.bsf_squared:
                continue
            # scan_leaf is the serial per-leaf refinement verbatim; its
            # read flows through the overridden read_leaf → the store.
            state.scan_leaf(leaf)
            stats.kernel_rows += leaf.size
        return
    if spec.kind != "series":
        return

    # Flatten to the serial pipeline's concatenated candidate arrays.
    leaf_index: list = []
    row_arrays: list = []
    bound_arrays: list = []
    for leaf, rows, bounds_sq in spec.series:
        leaf_index.extend([leaf] * rows.shape[0])
        row_arrays.append(rows)
        bound_arrays.append(bounds_sq)
    if not row_arrays:
        return
    rows_flat = np.concatenate(row_arrays)
    bounds_flat = np.concatenate(bound_arrays)
    for start in range(0, rows_flat.shape[0], _REFINE_BATCH):
        chunk_rows = rows_flat[start : start + _REFINE_BATCH]
        chunk_lb_sq = bounds_flat[start : start + _REFINE_BATCH]
        chunk_leaves = leaf_index[start : start + _REFINE_BATCH]
        alive = chunk_lb_sq < state.results.bsf_squared
        if not alive.any():
            continue
        keep = np.nonzero(alive)[0]
        # Gather the kept rows from store-memoized blocks, grouped by
        # leaf in order — the same values (and the same row order) the
        # serial pipeline's coalesced read_positions would produce.
        data_parts: list = []
        position_parts: list = []
        j = 0
        kept = keep.tolist()
        while j < len(kept):
            leaf = chunk_leaves[kept[j]]
            end = j
            while end < len(kept) and chunk_leaves[kept[end]] is leaf:
                end += 1
            rows_in_leaf = np.array(
                [int(chunk_rows[kept[m]]) for m in range(j, end)],
                dtype=np.int64,
            )
            data_parts.append(state.leaf_rows(leaf, rows_in_leaf))
            position_parts.append(leaf.file_position + rows_in_leaf)
            j = end
        data = np.concatenate(data_parts, axis=0)
        positions = np.concatenate(position_parts)
        squared, compared = early_abandon_squared(
            state.query, data, state.results.bsf_squared
        )
        state.profile.series_accessed += keep.shape[0]
        state.profile.distance_computations += keep.shape[0]
        state.profile.points_compared += compared
        state.profile.points_total += keep.shape[0] * length
        state.results.update_batch_squared(squared, positions)
        stats.kernel_rows += keep.shape[0]


def exact_knn_batch(
    queries: np.ndarray,
    k: int,
    config: HerculesConfig,
    root: Node,
    lrd: SeriesFile,
    lsd_words: np.ndarray,
    sax_space: SaxSpace,
    num_leaves: int,
    num_series: int,
    results: Optional[List[ResultSet]] = None,
    signatures=None,
) -> BatchAnswer:
    """Plan and execute a whole query set together.

    Each query's answer is value-identical to what
    :func:`repro.core.query.exact_knn` returns for it alone.  The
    engine runs single-threaded — the parallelism lives in the batch
    dimension of the kernels, not in worker threads — so answers are
    deterministic for a fixed index regardless of
    ``config.num_query_threads``.

    ``results`` optionally supplies one result set per query (shard
    coordinators pass linked sets broadcasting the per-query global
    BSF² vector).  Per-query wall-time attribution inside the shared
    phases is amortized: the screen and shared-refinement walls are
    split evenly across the queries that took part.
    """
    arr = np.asarray(queries, dtype=DISTANCE_DTYPE)
    if arr.ndim != 2:
        raise ValueError(
            f"expected a (Q, series_length) query matrix, got shape {arr.shape}"
        )
    num_queries = arr.shape[0]
    stats = BatchStats(num_queries=num_queries)
    if num_queries == 0:
        return BatchAnswer([], stats)
    if results is not None and len(results) != num_queries:
        raise ValueError(
            f"got {len(results)} result sets for {num_queries} queries"
        )

    started = time.perf_counter()
    store = _BlockStore(lrd)
    states: List[_BatchSearchState] = []
    lclists: list = []

    with obs.span("query.batch", queries=num_queries, k=k) as batch_span:
        # -- per-query descent (phases 1 + 2); reads memoized ------------
        with obs.span("query.batch.descend"):
            for qi in range(num_queries):
                phase_started = time.perf_counter()
                state = _BatchSearchState(
                    store,
                    arr[qi],
                    k,
                    config,
                    lrd,
                    lsd_words,
                    sax_space,
                    num_leaves,
                    num_series,
                    results=results[qi] if results is not None else None,
                )
                _approx_knn(state, root)
                state.profile.time_approx = (
                    time.perf_counter() - phase_started
                )
                phase_started = time.perf_counter()
                lclist = _find_candidate_leaves(state)
                state.profile.time_candidates = (
                    time.perf_counter() - phase_started
                )
                state.profile.eapca_pruning = 1.0 - (
                    len(lclist) / num_leaves if num_leaves else 0.0
                )
                states.append(state)
                lclists.append(lclist)

        # -- phase 0: ONE whole-workload signature screen ----------------
        if signatures is not None:
            screen_started = time.perf_counter()
            with obs.span("query.batch.screen") as sp:
                paa_block = np.stack([s.query_paa for s in states])
                bsf_vector = np.array(
                    [s.results.bsf_squared for s in states],
                    dtype=DISTANCE_DTYPE,
                )
                masks = signatures.screen_batch(
                    paa_block,
                    bsf_vector,
                    arr.shape[1],
                    prune_factor=states[0].prune_factor,
                )
                survivors_total = 0
                for qi, state in enumerate(states):
                    state.sig_mask = masks[qi]
                    state.profile.prefilter_screened = signatures.num_series
                    survivors = int(np.count_nonzero(masks[qi]))
                    state.profile.prefilter_survivors = survivors
                    survivors_total += survivors
                    lclists[qi] = [
                        (leaf, bound)
                        for leaf, bound in lclists[qi]
                        if masks[qi][
                            leaf.file_position : leaf.file_position + leaf.size
                        ].any()
                    ]
                sp.set_attrs(
                    screened=signatures.num_series * num_queries,
                    survivors=survivors_total,
                )
            stats.screen_seconds = time.perf_counter() - screen_started

        # -- access-path planning (phase 3 where the path needs it) ------
        refine_started = time.perf_counter()
        specs = [
            _plan_refinement(
                states[qi], lclists[qi], config, num_leaves, num_series
            )
            for qi in range(num_queries)
        ]

        # -- shared-leaf refinement --------------------------------------
        loads_before = store.loads
        with obs.span("query.batch.refine") as sp:
            if states[0].prune_factor == 1.0:
                _refine_shared(states, specs, store, stats)
            else:
                for qi in range(num_queries):
                    _refine_serial_cadence(
                        states[qi], specs[qi], store, stats
                    )
            sp.set_attrs(
                unique_leaf_reads=store.loads - loads_before,
                leaf_uses=store.uses,
            )
        refine_seconds = time.perf_counter() - refine_started

        # -- finalize ----------------------------------------------------
        stats.unique_leaf_reads = store.loads
        stats.leaf_uses = store.uses
        stats.total_seconds = time.perf_counter() - started
        answers: List[QueryAnswer] = []
        refine_share = refine_seconds / num_queries
        screen_share = stats.screen_seconds / num_queries
        for state in states:
            distances, positions = state.results.items()
            state.profile.time_refine = refine_share
            state.profile.time_total = (
                state.profile.time_approx
                + state.profile.time_candidates
                + screen_share
                + refine_share
            )
            state.profile.cache_hits = state.store_hits
            state.profile.cache_misses = state.store_misses
            obs.observe_search(state.profile.time_total)
            answers.append(
                QueryAnswer(distances, positions, state.profile)
            )
        batch_span.set_attrs(
            unique_leaf_reads=stats.unique_leaf_reads,
            leaf_uses=stats.leaf_uses,
            leaf_share_factor=stats.leaf_share_factor,
            kernel_rows=stats.kernel_rows,
        )
    return BatchAnswer(answers, stats)
