"""Configuration for the Hercules index.

Defaults follow Section 4.2 ("Parameterization") scaled from the paper's
100M-series datasets down to laptop scale: the paper uses a leaf size of
100K series, a DBSize of 120K, 24 build threads with a flush threshold of
12, 12 write threads, and — during query answering — 24 threads,
``L_max = 80``, ``EAPCA_TH = 0.25`` and ``SAX_TH = 0.50``.  The two query
thresholds and ``L_max`` are kept at the paper's values (they are ratios,
not sizes); the capacity-like knobs default to values that produce trees
of comparable depth on datasets three orders of magnitude smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.retry import RetryPolicy


@dataclass(frozen=True)
class HerculesConfig:
    """All tunables of index construction and query answering.

    Ablation switches (Figure 12) are part of the configuration so the
    NoSAX / NoPara / NoWPara / NoThresh variants are first-class:

    * ``parallel_writing=False`` → NoWPara,
    * ``use_sax=False`` → NoSAX,
    * ``num_query_threads=1`` → NoPara,
    * ``adaptive_thresholds=False`` → NoThresh.
    """

    # -- tree shape ---------------------------------------------------------
    #: Leaf capacity τ: a leaf splits when it exceeds this many series.
    leaf_capacity: int = 100
    #: Number of segments in the root's (uniform) initial segmentation.
    initial_segments: int = 4
    #: Split-policy ablations (Section 3.2: EAPCA trees adapt resolution
    #: both horizontally and vertically, routing on mean or stddev).
    allow_vertical_splits: bool = True
    allow_std_routing: bool = True

    # -- iSAX summaries ------------------------------------------------------
    sax_segments: int = 16
    sax_alphabet: int = 256

    # -- index building ------------------------------------------------------
    #: Total threads during building: 1 coordinator + (N-1) InsertWorkers.
    #: ``1`` selects the sequential building path (no worker threads).
    num_build_threads: int = 4
    #: Series per DBuffer half (the paper's DBSize).
    db_size: int = 256
    #: HBuffer capacity in series; ``None`` sizes it to hold the dataset.
    buffer_capacity: int | None = None
    #: Number of full worker regions that triggers a flush.
    flush_threshold: int = 2
    #: Grouped batch insertion (the default): whole DBuffer claims are
    #: routed and stored as vectorized groups.  ``False`` selects the
    #: per-row reference path (one ``insert_series`` call per series),
    #: which builds a bit-for-bit identical tree, only slower.
    batched_inserts: bool = True
    #: Series claimed per FetchAdd by each InsertWorker (and per
    #: ``insert_batch`` call on the sequential path).  ``None`` picks a
    #: size automatically: the whole DBuffer batch when building with one
    #: thread, ``db_size / (4 · workers)`` otherwise (large enough to
    #: amortize routing, small enough to balance load).
    claim_size: int | None = None

    # -- index writing -------------------------------------------------------
    num_write_threads: int = 2
    #: NoWPara ablation: post-process leaves sequentially when False.
    parallel_writing: bool = True

    # -- sharding (ParIS+/MESSI-style scale-out past the GIL) ----------------
    #: Number of independent shard indexes the dataset is partitioned
    #: into.  1 (the default) is the classic single-tree layout,
    #: byte-identical to a non-sharded build.  N > 1 builds N disjoint
    #: sub-indexes under ``shard-XXXX/`` directories coordinated by a
    #: :class:`~repro.core.sharding.ShardedIndex`; exact k-NN over the
    #: disjoint union stays exact by construction.
    num_shards: int = 1
    #: Worker *processes* used to build shards (and, when > 0 at open
    #: time, to answer queries).  ``None`` picks ``min(num_shards,
    #: cpu_count)`` for builds and in-process threads for queries;
    #: ``0`` forces everything inline in the coordinator process.
    shard_workers: int | None = None

    # -- shard resilience (retries, supervision, degradation) -----------------
    #: Replacement worker processes the build supervisor may spawn after
    #: dead-worker detection before declaring the build failed.
    max_worker_restarts: int = 2
    #: Total tries per shard query dispatch (1 disables retries).
    shard_retry_attempts: int = 3
    #: Base backoff before the first shard retry; doubles per attempt
    #: with deterministic per-shard jitter (see :mod:`repro.retry`).
    shard_retry_backoff: float = 0.05
    #: Jitter fraction mixed into shard retry backoff, in [0, 1].
    shard_retry_jitter: float = 0.5
    #: Seconds one shard attempt may run before it is declared failed
    #: (``None``: unbounded).
    shard_timeout: float | None = None
    #: Whole-query wall-clock budget across all shards and retries
    #: (``None``: unbounded).
    query_deadline: float | None = None
    #: Allow a query to drop shards that still fail after retries and
    #: return a degraded answer (``coverage`` < 1) instead of raising.
    #: Exact-mode queries refuse to degrade unless this is set.
    partial_results: bool = False
    #: Seconds between supervision ticks while awaiting worker replies.
    shard_poll_seconds: float = 1.0
    #: Seconds without any worker progress before a build is declared
    #: dead (the dead-build watchdog).
    build_stall_timeout: float = 600.0
    #: Seconds to wait for build workers to exit before escalating to
    #: terminate()/kill().
    build_join_timeout: float = 30.0
    #: Seconds to wait for query-pool workers to exit before escalating.
    query_join_timeout: float = 10.0

    # -- query answering -----------------------------------------------------
    #: Maximum leaves visited by the approximate search (paper default 80).
    l_max: int = 80
    #: EAPCA pruning-ratio threshold below which a skip-sequential scan of
    #: LRDFile replaces phases 3-4 (paper default 0.25).
    eapca_th: float = 0.25
    #: SAX pruning-ratio threshold below which a skip-sequential scan of
    #: LRDFile replaces phase 4 (paper default 0.50).
    sax_th: float = 0.50
    num_query_threads: int = 4
    #: NoSAX ablation: prune with LB_EAPCA only when False.
    use_sax: bool = True
    #: NoThresh ablation: when False, phases 3-4 always run.
    adaptive_thresholds: bool = True
    #: ε-approximate search (the paper's stated future-work direction,
    #: following its ref [22]): every pruning comparison is tightened by
    #: (1 + ε), guaranteeing reported distances within (1 + ε) of the
    #: exact answers.  0.0 (default) keeps search exact.
    epsilon: float = 0.0

    # -- in-RAM signature pre-filter -----------------------------------------
    #: Build (and at query time use) the bit-packed iSAX signature array:
    #: a memory-resident whole-array LB_SAX screen that gates which
    #: leaves are descended and which rows are refined.  Answers stay
    #: bit-for-bit identical to the unfiltered pipeline.
    prefilter: bool = False
    #: Per-segment cardinality of the signatures, in bits.  More bits
    #: prune harder but cost ``segments·bits/8`` bytes of RAM per series.
    prefilter_bits: int = 4
    #: Run the cheap Hamming pre-screen before the exact table gather.
    prefilter_hamming: bool = True

    def __post_init__(self) -> None:
        if self.leaf_capacity < 2:
            raise ConfigError(f"leaf_capacity must be >= 2, got {self.leaf_capacity}")
        if self.initial_segments < 1:
            raise ConfigError(
                f"initial_segments must be >= 1, got {self.initial_segments}"
            )
        if self.sax_segments < 1:
            raise ConfigError(f"sax_segments must be >= 1, got {self.sax_segments}")
        if not 2 <= self.sax_alphabet <= 256:
            raise ConfigError(
                f"sax_alphabet must be in [2, 256], got {self.sax_alphabet}"
            )
        if self.num_build_threads < 1:
            raise ConfigError(
                f"num_build_threads must be >= 1, got {self.num_build_threads}"
            )
        if self.db_size < 1:
            raise ConfigError(f"db_size must be >= 1, got {self.db_size}")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ConfigError(
                f"buffer_capacity must be positive, got {self.buffer_capacity}"
            )
        if self.claim_size is not None and self.claim_size < 1:
            raise ConfigError(
                f"claim_size must be >= 1, got {self.claim_size}"
            )
        num_insert_workers = max(self.num_build_threads - 1, 1)
        if not 1 <= self.flush_threshold <= num_insert_workers:
            raise ConfigError(
                f"flush_threshold must be in [1, {num_insert_workers}] "
                f"(the InsertWorker count), got {self.flush_threshold}"
            )
        if self.num_write_threads < 1:
            raise ConfigError(
                f"num_write_threads must be >= 1, got {self.num_write_threads}"
            )
        if self.l_max < 1:
            raise ConfigError(f"l_max must be >= 1, got {self.l_max}")
        for name, value in (("eapca_th", self.eapca_th), ("sax_th", self.sax_th)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.num_query_threads < 1:
            raise ConfigError(
                f"num_query_threads must be >= 1, got {self.num_query_threads}"
            )
        if self.epsilon < 0.0:
            raise ConfigError(f"epsilon must be >= 0, got {self.epsilon}")
        if not 1 <= self.prefilter_bits <= 8:
            raise ConfigError(
                f"prefilter_bits must be in [1, 8], got {self.prefilter_bits}"
            )
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.shard_workers is not None and self.shard_workers < 0:
            raise ConfigError(
                f"shard_workers must be >= 0, got {self.shard_workers}"
            )
        if self.max_worker_restarts < 0:
            raise ConfigError(
                f"max_worker_restarts must be >= 0, got "
                f"{self.max_worker_restarts}"
            )
        if self.shard_retry_attempts < 1:
            raise ConfigError(
                f"shard_retry_attempts must be >= 1, got "
                f"{self.shard_retry_attempts}"
            )
        if self.shard_retry_backoff < 0.0:
            raise ConfigError(
                f"shard_retry_backoff must be >= 0, got "
                f"{self.shard_retry_backoff}"
            )
        if not 0.0 <= self.shard_retry_jitter <= 1.0:
            raise ConfigError(
                f"shard_retry_jitter must be in [0, 1], got "
                f"{self.shard_retry_jitter}"
            )
        for name in ("shard_timeout", "query_deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ConfigError(f"{name} must be positive, got {value}")
        for name in (
            "shard_poll_seconds",
            "build_stall_timeout",
            "build_join_timeout",
            "query_join_timeout",
        ):
            if getattr(self, name) <= 0.0:
                raise ConfigError(
                    f"{name} must be positive, got {getattr(self, name)}"
                )

    @property
    def num_insert_workers(self) -> int:
        """InsertWorker count: total build threads minus the coordinator."""
        return max(self.num_build_threads - 1, 1)

    @property
    def effective_claim_size(self) -> int:
        """Series claimed per FetchAdd during batched insertion.

        The configured ``claim_size``, or the auto heuristic: the whole
        DBuffer batch when building sequentially, a quarter of each
        worker's fair share otherwise.
        """
        if self.claim_size is not None:
            return self.claim_size
        if self.num_build_threads == 1:
            return self.db_size
        return max(self.db_size // (4 * self.num_insert_workers), 1)

    def retry_policy(self) -> RetryPolicy:
        """The shard-dispatch :class:`~repro.retry.RetryPolicy` this
        configuration describes."""
        return RetryPolicy(
            attempts=self.shard_retry_attempts,
            backoff_seconds=self.shard_retry_backoff,
            jitter_fraction=self.shard_retry_jitter,
            shard_timeout=self.shard_timeout,
            deadline=self.query_deadline,
        )

    def with_options(self, **changes) -> "HerculesConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **changes)
