"""The k-best-so-far result set shared by query workers.

The paper's ``Results`` array holds the k best answers at any time;
``BSF_k``, the k-th best distance, drives every pruning decision.  Workers
of Algorithm 14 update it under a readers-writers lock; distances are the
hot read path, so reads of the cached bound are lock-free here (a stale
bound can only make pruning more conservative, never incorrect).

Distances are stored in *squared* space — the UCR-suite optimization the
whole query pipeline operates in: candidates arrive as squared Euclidean
distances straight from the batch kernels, pruning compares squared
values against ``bsf_squared``, and the single square root per answer is
taken in :meth:`ResultSet.items`.  The linear-space entry points
(:meth:`update`, :meth:`update_batch`) square on the way in, so methods
whose distances are not Euclidean (e.g. DTW) keep working unchanged —
``sqrt(d * d) == d`` exactly in IEEE round-to-nearest.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from repro.types import DISTANCE_DTYPE


class ResultSet:
    """Thread-safe container of the k smallest (distance, position) pairs."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._lock = threading.Lock()
        # Max-heap via negated squared distances: the root is the current
        # k-th best.
        self._heap: list[tuple[float, int]] = []
        # Guard against the same series entering twice (e.g. a position
        # examined by both an approximate probe and a later filter pass).
        self._members: set[int] = set()
        self._bsf_squared = np.inf

    @property
    def bsf_squared(self) -> float:
        """The squared k-th smallest distance so far (inf until k answers).

        Read without the lock: Python guarantees the float reference swap
        is atomic, and a momentarily stale value only weakens pruning.
        """
        return self._bsf_squared

    @property
    def bsf(self) -> float:
        """The k-th smallest distance so far, in linear space."""
        return float(np.sqrt(self._bsf_squared))

    def update_squared(self, distance_squared: float, position: int) -> bool:
        """Offer one squared-distance candidate; True if it entered."""
        if distance_squared >= self._bsf_squared:
            return False
        with self._lock:
            if position in self._members:
                return False
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, (-distance_squared, position))
            elif distance_squared < -self._heap[0][0]:
                _, evicted = heapq.heapreplace(
                    self._heap, (-distance_squared, position)
                )
                self._members.discard(evicted)
            else:
                return False
            self._members.add(position)
            if len(self._heap) == self.k:
                self._bsf_squared = -self._heap[0][0]
            return True

    def update(self, distance: float, position: int) -> bool:
        """Offer one linear-space candidate; True if it entered the top-k."""
        return self.update_squared(distance * distance, position)

    def update_batch_squared(
        self, distances_squared: np.ndarray, positions: np.ndarray
    ) -> int:
        """Offer many squared-distance candidates; returns how many entered.

        A vectorized pre-filter against the lock-free ``bsf_squared``
        drops the (typical) majority of candidates without taking the
        lock; survivors are merged into the heap in one locked pass,
        sorted ascending so the merge stops at the first candidate that
        cannot enter.  ``inf`` entries (early-abandoned rows) are dropped
        by the pre-filter for free.
        """
        dist = np.asarray(distances_squared, dtype=DISTANCE_DTYPE)
        pos = np.asarray(positions, dtype=np.int64)
        if dist.shape != pos.shape or dist.ndim != 1:
            raise ValueError(
                f"distances {dist.shape} and positions {pos.shape} must be "
                "matching 1-D vectors"
            )
        # Stale bsf_squared is only ever >= the true bound (it decreases
        # monotonically), so the pre-filter can admit extras but never
        # drop a candidate the locked merge would have accepted.
        mask = dist < self._bsf_squared
        if not mask.all():
            dist = dist[mask]
            pos = pos[mask]
        if dist.shape[0] == 0:
            return 0
        order = np.argsort(dist, kind="stable")
        dist_list = dist[order].tolist()
        pos_list = pos[order].tolist()
        accepted = 0
        with self._lock:
            heap = self._heap
            members = self._members
            for d, p in zip(dist_list, pos_list):
                if len(heap) >= self.k:
                    if d >= -heap[0][0]:
                        break  # sorted: everything after is worse
                    if p in members:
                        continue
                    _, evicted = heapq.heapreplace(heap, (-d, p))
                    members.discard(evicted)
                else:
                    if p in members:
                        continue
                    heapq.heappush(heap, (-d, p))
                members.add(p)
                accepted += 1
            if len(heap) == self.k:
                self._bsf_squared = -heap[0][0]
        return accepted

    def update_batch(self, distances: np.ndarray, positions: np.ndarray) -> int:
        """Offer many linear-space candidates; returns how many entered."""
        dist = np.asarray(distances, dtype=DISTANCE_DTYPE)
        return self.update_batch_squared(np.square(dist), positions)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Current answers sorted by ascending distance (linear space).

        The one square root of the squared-space pipeline happens here.
        Returns ``(distances, positions)``; shorter than k if fewer than
        k candidates were ever offered.
        """
        with self._lock:
            pairs = sorted((-d, p) for d, p in self._heap)
        distances = np.sqrt(
            np.array([d for d, _ in pairs], dtype=DISTANCE_DTYPE)
        )
        positions = np.array([p for _, p in pairs], dtype=np.int64)
        return distances, positions

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
