"""The k-best-so-far result set shared by query workers.

The paper's ``Results`` array holds the k best answers at any time;
``BSF_k``, the k-th best distance, drives every pruning decision.  Workers
of Algorithm 14 update it under a readers-writers lock; distances are the
hot read path, so reads of the cached bound are lock-free here (a stale
bound can only make pruning more conservative, never incorrect).
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from repro.types import DISTANCE_DTYPE


class ResultSet:
    """Thread-safe container of the k smallest (distance, position) pairs."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._lock = threading.Lock()
        # Max-heap via negated distances: the root is the current k-th best.
        self._heap: list[tuple[float, int]] = []
        # Guard against the same series entering twice (e.g. a position
        # examined by both an approximate probe and a later filter pass).
        self._members: set[int] = set()
        self._bsf = np.inf

    @property
    def bsf(self) -> float:
        """The k-th smallest distance so far (inf until k answers exist).

        Read without the lock: Python guarantees the float reference swap
        is atomic, and a momentarily stale value only weakens pruning.
        """
        return self._bsf

    def update(self, distance: float, position: int) -> bool:
        """Offer one candidate; returns True if it entered the top-k."""
        if distance >= self._bsf:
            return False
        with self._lock:
            if position in self._members:
                return False
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, (-distance, position))
            elif distance < -self._heap[0][0]:
                _, evicted = heapq.heapreplace(self._heap, (-distance, position))
                self._members.discard(evicted)
            else:
                return False
            self._members.add(position)
            if len(self._heap) == self.k:
                self._bsf = -self._heap[0][0]
            return True

    def update_batch(self, distances: np.ndarray, positions: np.ndarray) -> int:
        """Offer many candidates; returns how many entered the top-k."""
        accepted = 0
        # Cheap pre-filter outside the lock, then a single locked pass.
        bound = self._bsf
        order = np.argsort(distances, kind="stable")
        for idx in order:
            dist = float(distances[idx])
            if dist >= bound and len(self._heap) >= self.k:
                break  # sorted: everything after is worse
            if self.update(dist, int(positions[idx])):
                accepted += 1
                bound = self._bsf
        return accepted

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Current answers sorted by ascending distance.

        Returns ``(distances, positions)``; shorter than k if fewer than
        k candidates were ever offered.
        """
        with self._lock:
            pairs = sorted((-d, p) for d, p in self._heap)
        distances = np.array([d for d, _ in pairs], dtype=DISTANCE_DTYPE)
        positions = np.array([p for _, p in pairs], dtype=np.int64)
        return distances, positions

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
