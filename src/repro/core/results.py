"""The k-best-so-far result set shared by query workers.

The paper's ``Results`` array holds the k best answers at any time;
``BSF_k``, the k-th best distance, drives every pruning decision.  Workers
of Algorithm 14 update it under a readers-writers lock; distances are the
hot read path, so reads of the cached bound are lock-free here (a stale
bound can only make pruning more conservative, never incorrect).

Distances are stored in *squared* space — the UCR-suite optimization the
whole query pipeline operates in: candidates arrive as squared Euclidean
distances straight from the batch kernels, pruning compares squared
values against ``bsf_squared``, and the single square root per answer is
taken in :meth:`ResultSet.items`.  The linear-space entry points
(:meth:`update`, :meth:`update_batch`) square on the way in, so methods
whose distances are not Euclidean (e.g. DTW) keep working unchanged —
``sqrt(d * d) == d`` exactly in IEEE round-to-nearest.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from repro.types import DISTANCE_DTYPE


class ResultSet:
    """Thread-safe container of the k smallest (distance, position) pairs."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._lock = threading.Lock()
        # Max-heap via negated squared distances: the root is the current
        # k-th best.
        self._heap: list[tuple[float, int]] = []
        # Guard against the same series entering twice (e.g. a position
        # examined by both an approximate probe and a later filter pass).
        self._members: set[int] = set()
        self._bsf_squared = np.inf

    @property
    def bsf_squared(self) -> float:
        """The squared k-th smallest distance so far (inf until k answers).

        Read without the lock: Python guarantees the float reference swap
        is atomic, and a momentarily stale value only weakens pruning.
        """
        return self._bsf_squared

    @property
    def bsf(self) -> float:
        """The k-th smallest distance so far, in linear space."""
        return float(np.sqrt(self._bsf_squared))

    def update_squared(self, distance_squared: float, position: int) -> bool:
        """Offer one squared-distance candidate; True if it entered."""
        if distance_squared >= self._bsf_squared:
            return False
        with self._lock:
            if position in self._members:
                return False
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, (-distance_squared, position))
            elif distance_squared < -self._heap[0][0]:
                _, evicted = heapq.heapreplace(
                    self._heap, (-distance_squared, position)
                )
                self._members.discard(evicted)
            else:
                return False
            self._members.add(position)
            if len(self._heap) == self.k:
                self._bsf_squared = -self._heap[0][0]
            return True

    def update(self, distance: float, position: int) -> bool:
        """Offer one linear-space candidate; True if it entered the top-k."""
        return self.update_squared(distance * distance, position)

    def update_batch_squared(
        self, distances_squared: np.ndarray, positions: np.ndarray
    ) -> int:
        """Offer many squared-distance candidates; returns how many entered.

        A vectorized pre-filter against the lock-free ``bsf_squared``
        drops the (typical) majority of candidates without taking the
        lock; survivors are merged into the heap in one locked pass,
        sorted ascending so the merge stops at the first candidate that
        cannot enter.  ``inf`` entries (early-abandoned rows) are dropped
        by the pre-filter for free.
        """
        dist = np.asarray(distances_squared, dtype=DISTANCE_DTYPE)
        pos = np.asarray(positions, dtype=np.int64)
        if dist.shape != pos.shape or dist.ndim != 1:
            raise ValueError(
                f"distances {dist.shape} and positions {pos.shape} must be "
                "matching 1-D vectors"
            )
        # Stale bsf_squared is only ever >= the true bound (it decreases
        # monotonically), so the pre-filter can admit extras but never
        # drop a candidate the locked merge would have accepted.
        mask = dist < self._bsf_squared
        if not mask.all():
            dist = dist[mask]
            pos = pos[mask]
        if dist.shape[0] == 0:
            return 0
        order = np.argsort(dist, kind="stable")
        dist_list = dist[order].tolist()
        pos_list = pos[order].tolist()
        accepted = 0
        with self._lock:
            heap = self._heap
            members = self._members
            for d, p in zip(dist_list, pos_list):
                if len(heap) >= self.k:
                    if d >= -heap[0][0]:
                        break  # sorted: everything after is worse
                    if p in members:
                        continue
                    _, evicted = heapq.heapreplace(heap, (-d, p))
                    members.discard(evicted)
                else:
                    if p in members:
                        continue
                    heapq.heappush(heap, (-d, p))
                members.add(p)
                accepted += 1
            if len(heap) == self.k:
                self._bsf_squared = -heap[0][0]
        return accepted

    def update_batch(self, distances: np.ndarray, positions: np.ndarray) -> int:
        """Offer many linear-space candidates; returns how many entered."""
        dist = np.asarray(distances, dtype=DISTANCE_DTYPE)
        return self.update_batch_squared(np.square(dist), positions)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Current answers sorted by ascending distance (linear space).

        The one square root of the squared-space pipeline happens here.
        Returns ``(distances, positions)``; shorter than k if fewer than
        k candidates were ever offered.
        """
        with self._lock:
            pairs = sorted((-d, p) for d, p in self._heap)
        distances = np.sqrt(
            np.array([d for d, _ in pairs], dtype=DISTANCE_DTYPE)
        )
        positions = np.array([p for _, p in pairs], dtype=np.int64)
        return distances, positions

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


class SharedBsf:
    """A thread-shared global BSF² cell for scatter-gather coordination.

    Each shard search holds a :class:`LinkedResultSet` pointing at one of
    these; a shard that tightens its local k-th best publishes the new
    bound here, and every other shard's next (throttled) refresh picks it
    up.  The value only ever decreases, so readers can act on a stale
    copy safely — stale means conservative pruning, never a wrong answer.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = np.inf

    def get(self) -> float:
        with self._lock:
            return self._value

    def publish(self, value: float) -> None:
        with self._lock:
            if value < self._value:
                self._value = value

    def reset(self) -> None:
        """Back to +inf before a new query reuses the cell."""
        with self._lock:
            self._value = np.inf


class LinkedResultSet(ResultSet):
    """A shard-local result set pruning against a shared global BSF².

    The scatter-gather coordinator gives every shard search one of these,
    all linked to the same bound cell (:class:`SharedBsf` for threads, a
    process-shared equivalent for worker processes).  Reads of
    :attr:`bsf_squared` — the hot pruning path — return
    ``min(local k-th best, cached global bound)`` and refresh the cached
    global bound only every ``_REFRESH_READS`` reads, so the per-read
    cost stays one comparison instead of a lock (or semaphore) acquire.
    Local improvements are published to the link immediately.

    Correctness does not depend on freshness: the global bound is an
    upper bound on the final global k-th distance at all times (it is the
    min over shards of *local* k-th bests, each ≥ the final global k-th),
    so pruning against any past value of it can only discard candidates
    that provably cannot enter the global top-k — up to ties at the k-th
    distance, which are reported arbitrarily exactly as a single index
    does.
    """

    _REFRESH_READS = 32

    def __init__(self, k: int, link) -> None:
        super().__init__(k)
        self._link = link
        self._reads = 0
        self._link_bsf = float(link.get())

    @property
    def bsf_squared(self) -> float:
        self._reads += 1
        if self._reads >= self._REFRESH_READS:
            self._reads = 0
            self._link_bsf = float(self._link.get())
        local = self._bsf_squared
        return local if local < self._link_bsf else self._link_bsf

    def _publish_if_better(self) -> None:
        local = self._bsf_squared
        if local < self._link_bsf:
            self._link.publish(local)
            self._link_bsf = float(self._link.get())

    def update_squared(self, distance_squared: float, position: int) -> bool:
        entered = super().update_squared(distance_squared, position)
        if entered:
            self._publish_if_better()
        return entered

    def update_batch_squared(
        self, distances_squared: np.ndarray, positions: np.ndarray
    ) -> int:
        accepted = super().update_batch_squared(distances_squared, positions)
        if accepted:
            self._publish_if_better()
        return accepted
