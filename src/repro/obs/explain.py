"""Per-query EXPLAIN reports: where a query's time and I/O went.

Formats the cost record the query engine already produces (the
:class:`~repro.core.query.QueryProfile` inside every answer) into the
breakdown the paper reports around Figures 10-11: per-phase timings,
pruning ratios, candidate counts, the fraction of raw data touched, and
the modeled cost of the observed I/O pattern on the paper's testbed
disks.  Used by the ``repro explain`` CLI command and importable by
harnesses.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["explain_profile", "explain_workload_summary"]


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2%}"


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f} ms"


def explain_profile(
    profile, num_series: Optional[int] = None, label: str = "query"
) -> str:
    """A multi-line report of one query's cost profile."""
    lines = [f"{label}: path={profile.path or '?'}"]
    lines.append(
        f"  phase 1 approx      {_ms(profile.time_approx)}"
        f"   ({profile.approx_leaves} leaves visited)"
    )
    lines.append(
        f"  phase 2 candidates  {_ms(profile.time_candidates)}"
        f"   ({profile.candidate_leaves} candidate leaves, "
        f"EAPCA pruning {_pct(profile.eapca_pruning)})"
    )
    if getattr(profile, "prefilter_screened", 0):
        lines.append(
            f"  prefilter screen    {profile.prefilter_survivors} of "
            f"{profile.prefilter_screened} series survive "
            f"(pruned {_pct(profile.prefilter_pruned_fraction)})"
        )
    refine = f"  phase 3+4 refine    {_ms(profile.time_refine)}"
    if profile.sax_pruning is not None:
        refine += (
            f"   ({profile.candidate_series} candidate series, "
            f"SAX pruning {_pct(profile.sax_pruning)})"
        )
    lines.append(refine)
    totals = (
        f"  total               {_ms(profile.time_total)}"
        f"   ({profile.distance_computations} distance computations, "
        f"{profile.series_accessed} series read"
    )
    if num_series:
        totals += (
            f" = {_pct(profile.data_accessed_fraction(num_series))} of data"
        )
    totals += ")"
    lines.append(totals)
    if profile.points_total:
        lines.append(
            f"  early abandoning    {profile.points_compared} of "
            f"{profile.points_total} points compared "
            f"(abandoned {_pct(profile.abandoned_fraction)})"
        )
    if profile.cache_hits or profile.cache_misses:
        lines.append(
            f"  leaf cache          {profile.cache_hits} hits, "
            f"{profile.cache_misses} misses "
            f"(hit rate {_pct(profile.cache_hit_rate)})"
        )
    if profile.io is not None:
        io = profile.io
        lines.append(
            f"  io                  {io.random_seeks} random seeks, "
            f"{io.sequential_reads} sequential reads, "
            f"{io.bytes_read / 1e6:.2f} MB read, "
            f"modeled {profile.modeled_io_seconds() * 1e3:.2f} ms "
            f"on paper disks"
        )
    return "\n".join(lines)


def explain_workload_summary(registry) -> str:
    """A closing summary over every query EXPLAIN fed into ``registry``.

    ``registry`` is a :class:`~repro.obs.metrics.MetricsRegistry` whose
    ``query.*`` instruments were filled by
    :func:`repro.obs.metrics.record_profile`.
    """
    summary = registry.summary()
    hist = summary["histograms"]
    counters = summary["counters"]
    count = counters.get("query.count", 0)
    lines = [f"workload summary ({count} queries):"]

    def row(label: str, name: str, scale: float = 1.0, unit: str = "") -> None:
        stats = hist.get(name)
        if not stats or not stats["count"]:
            return
        lines.append(
            f"  {label:<22} mean {stats['mean'] * scale:9.3f}{unit}"
            f"  p50 {stats['p50'] * scale:9.3f}{unit}"
            f"  p95 {stats['p95'] * scale:9.3f}{unit}"
            f"  max {stats['max'] * scale:9.3f}{unit}"
        )

    row("query seconds", "query.seconds", 1e3, " ms")
    row("phase 1 approx", "query.approx_seconds", 1e3, " ms")
    row("phase 2 candidates", "query.candidates_seconds", 1e3, " ms")
    row("phase 3+4 refine", "query.refine_seconds", 1e3, " ms")
    row("EAPCA pruning", "query.eapca_pruning")
    row("SAX pruning", "query.sax_pruning")
    row("prefilter pruning", "query.prefilter.pruned_fraction")
    row("data accessed", "query.data_accessed_fraction")
    row("abandoned fraction", "query.abandoned_fraction")
    row("cache hit rate", "query.cache_hit_rate")
    row("modeled io seconds", "query.modeled_io_seconds", 1e3, " ms")
    total_dc = counters.get("query.distance_computations", 0)
    total_read = counters.get("query.series_accessed", 0)
    if count:
        lines.append(
            f"  totals: {total_dc} distance computations, "
            f"{total_read} series read"
        )
        total_points = counters.get("query.points_total", 0)
        if total_points:
            compared = counters.get("query.points_compared", 0)
            lines.append(
                f"  points: {compared} of {total_points} compared "
                f"(abandoned {1.0 - compared / total_points:.2%})"
            )
        cache_hits = counters.get("query.cache.hits", 0)
        cache_misses = counters.get("query.cache.misses", 0)
        if cache_hits or cache_misses:
            lines.append(
                f"  leaf cache: {cache_hits} hits, {cache_misses} misses "
                f"(hit rate {cache_hits / (cache_hits + cache_misses):.2%})"
            )
    paths = {
        name.split("query.path.", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("query.path.")
    }
    if paths:
        chosen = ", ".join(f"{k}={v}" for k, v in sorted(paths.items()))
        lines.append(f"  access paths: {chosen}")
    batches = counters.get("query.batch.count", 0)
    if batches:
        batch_queries = counters.get("query.batch.queries", 0)
        reads = counters.get("query.batch.unique_leaf_reads", 0)
        uses = counters.get("query.batch.leaf_uses", 0)
        share = uses / reads if reads else 0.0
        lines.append(
            f"  batch execution: {batch_queries} queries in {batches} "
            f"batch(es), {reads} leaf reads serving {uses} uses "
            f"(leaf-sharing ratio {share:.2f}x)"
        )
    retries = counters.get("shard.retries", 0)
    degraded = counters.get("query.degraded", 0)
    dropped = counters.get("shard.dropped", 0)
    if retries or degraded:
        coverage = hist.get("query.coverage", {})
        lines.append(
            f"  resilience: {retries} shard retries, {degraded} degraded "
            f"answers ({dropped} shards dropped, "
            f"min coverage {coverage.get('min', 1.0):.2%})"
        )
    return "\n".join(lines)
