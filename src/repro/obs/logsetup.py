"""Package-level logging configuration for CLI and harness entry points.

Library modules log through ``logging.getLogger(__name__)`` and never
configure handlers (standard library etiquette); entry points call
:func:`configure_logging` once to decide where those records go.  The
CLI maps ``-q`` / (default) / ``-v`` / ``-vv`` onto verbosity
-1 / 0 / 1 / 2.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging"]

#: Marker attribute on handlers we installed, so reconfiguration
#: replaces them instead of stacking duplicates.
_HANDLER_MARK = "_repro_obs_handler"

_LEVELS = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def configure_logging(
    verbosity: int = 0, stream: Optional[TextIO] = None
) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns the root logger.

    ``verbosity`` clamps to [-1, 2]: -1 errors only, 0 warnings (the
    default), 1 informational progress (builds, flushes, writes), 2 full
    debug.  Idempotent — calling again replaces the handler (and its
    level) rather than adding another one.
    """
    level = _LEVELS[max(-1, min(2, verbosity))]
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
