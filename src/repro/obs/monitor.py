"""`repro monitor`: a terminal dashboard over a telemetry spool.

The monitor is a *reader* — it tails the spool directory a
:class:`~repro.obs.exporter.TelemetrySink` maintains (it never touches
the serving process), so it can run on the same box as a build/query
loop or over a copied spool after the fact.  Rendering is a pure
function of the spool contents (:func:`render_dashboard`), which is
what the tests drive; :func:`run_monitor` wraps it in a clear-screen
refresh loop.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Optional

from repro.obs.exporter import EVENTS_JSONL, METRICS_JSON, RESOURCES_JSONL

__all__ = ["load_spool", "render_dashboard", "run_monitor", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 32) -> str:
    """Min-max normalized block characters for a value history."""
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _BLOCKS[0] * len(values)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int((v - lo) * scale)] for v in values)


def _read_jsonl(path: Path, limit: Optional[int] = None) -> list:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return []
    if limit is not None:
        lines = lines[-limit:]
    records = []
    for line in lines:
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # a torn tail line mid-append
    return records


def load_spool(directory) -> dict:
    """Parse the spool files; missing pieces come back empty/None."""
    directory = Path(directory)
    snapshot = None
    try:
        snapshot = json.loads(
            (directory / METRICS_JSON).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        pass
    return {
        "snapshot": snapshot,
        "events": _read_jsonl(directory / EVENTS_JSONL),
        "resources": _read_jsonl(directory / RESOURCES_JSONL, limit=256),
    }


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:7.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}TiB"


def _shard_table(summary: dict, events: list) -> list:
    """Per-shard rows: restarts/drops/retries from counters + events."""
    shards: dict = {}

    def row(key):
        return shards.setdefault(
            key, {"restarts": 0, "dropped": 0, "retries": 0, "rss": None}
        )

    for event in events:
        attrs = event.get("attrs", {})
        shard = attrs.get("shard", attrs.get("worker"))
        if shard is None:
            continue
        if event.get("type") == "worker_restart":
            row(shard)["restarts"] += 1
        elif event.get("type") == "shard_dropped":
            row(shard)["dropped"] += 1
    for name, value in summary.get("counters", {}).items():
        parts = name.split(".")
        if len(parts) >= 3 and parts[0] == "shard" and parts[1].isdigit():
            if parts[2] == "query" and parts[-1] == "count":
                row(int(parts[1]))
    for name, value in summary.get("gauges", {}).items():
        parts = name.split(".")
        if (len(parts) == 4 and parts[0] == "shard" and parts[1].isdigit()
                and parts[2] == "proc" and parts[3] == "rss_bytes"):
            row(int(parts[1]))["rss"] = value
    lines = []
    for shard in sorted(shards, key=str):
        info = shards[shard]
        rss = _fmt_bytes(info["rss"]).strip() if info["rss"] else "-"
        lines.append(
            f"    shard {shard}: restarts={info['restarts']} "
            f"dropped={info['dropped']} rss={rss}"
        )
    return lines


def render_dashboard(directory, now: Optional[float] = None,
                     event_tail: int = 6) -> str:
    """The dashboard text for one refresh (pure; no clearing/looping)."""
    if now is None:
        now = time.time()
    spool = load_spool(directory)
    snapshot = spool["snapshot"]
    out = [f"repro monitor — {directory}"]
    if snapshot is None:
        out.append(f"  waiting for telemetry (no {METRICS_JSON} yet) ...")
        return "\n".join(out) + "\n"
    age = max(0.0, now - snapshot.get("ts", now))
    out[0] += (
        f"   [flush #{snapshot.get('flushes', '?')}, "
        f"pid {snapshot.get('pid', '?')}, {age:.1f}s ago]"
    )
    summary = snapshot.get("summary", {})
    whists = summary.get("windowed_histograms", {})
    wcounters = summary.get("windowed_counters", {})

    latency = whists.get("query.latency_seconds")
    requests = wcounters.get("query.requests", {})
    out.append("")
    out.append("  queries")
    if latency and latency.get("count"):
        out.append(
            f"    qps {latency['rate']:8.2f}   "
            f"p50 {_fmt_ms(latency['p50'])}   "
            f"p95 {_fmt_ms(latency['p95'])}   "
            f"p99 {_fmt_ms(latency['p99'])}   "
            f"(window n={latency['count']}, "
            f"lifetime n={int(requests.get('total', latency['total_count']))})"
        )
    else:
        engine = whists.get("engine.search_seconds")
        if engine and engine.get("count"):
            out.append(
                f"    engine searches: {engine['rate']:.2f}/s   "
                f"p95 {_fmt_ms(engine['p95'])}"
            )
        else:
            out.append("    no queries in window")
    coverage = whists.get("query.coverage")
    degraded = wcounters.get("query.degraded", {})
    if coverage and coverage.get("count"):
        out.append(
            f"    coverage mean {coverage['mean']:.4f}  "
            f"min {coverage['min']:.4f}   "
            f"degraded answers {int(degraded.get('total', 0))}"
        )

    slo = snapshot.get("slo")
    if slo:
        state = "OK" if slo.get("healthy") else "VIOLATED"
        out.append("")
        out.append(f"  slo [{state}]")
        out.append(
            f"    latency  <= {slo['latency_threshold'] * 1e3:.0f}ms: "
            f"attainment {slo['latency_attainment']:.2%} "
            f"(target {slo['latency_target']:.2%}, "
            f"burn {slo['latency_burn']:.2f}x)"
        )
        out.append(
            f"    coverage attainment {slo['coverage_attainment']:.2%} "
            f"(target {slo['coverage_target']:.2%}, "
            f"burn {slo['coverage_burn']:.2f}x)"
        )

    counters = summary.get("counters", {})
    hits = counters.get("query.cache.hits", counters.get("cache.leaf.hits", 0))
    misses = counters.get(
        "query.cache.misses", counters.get("cache.leaf.misses", 0)
    )
    if hits or misses:
        out.append("")
        out.append(
            f"  cache   hit rate {hits / (hits + misses):.2%} "
            f"({int(hits)} hits / {int(misses)} misses)"
        )

    shard_lines = _shard_table(summary, spool["events"])
    restarts = counters.get("build.worker_restarts", 0)
    retries = counters.get("shard.retries", 0)
    dropped = counters.get("shard.dropped", 0)
    if shard_lines or restarts or retries or dropped:
        out.append("")
        out.append(
            f"  shards   worker restarts={int(restarts)} "
            f"retries={int(retries)} dropped={int(dropped)}"
        )
        out.extend(shard_lines)

    history = [
        rec["samples"][""]["rss_bytes"]
        for rec in spool["resources"]
        if rec.get("samples", {}).get("", {}).get("rss_bytes") is not None
    ]
    gauges = summary.get("gauges", {})
    rss_now = gauges.get("proc.rss_bytes")
    if history or rss_now is not None:
        out.append("")
        line = "  rss    "
        if rss_now is not None:
            line += f"{_fmt_bytes(rss_now).strip():>10} "
        if history:
            line += f" {sparkline(history)}"
        out.append(line)
        workers = sorted(
            (name, value) for name, value in gauges.items()
            if name.endswith(".proc.rss_bytes") and name != "proc.rss_bytes"
        )
        for name, value in workers:
            label = name[: -len(".proc.rss_bytes")]
            out.append(f"    {label:<12} {_fmt_bytes(value).strip()}")

    events = spool["events"][-event_tail:]
    if events:
        out.append("")
        out.append("  events")
        for event in events:
            ts = time.strftime("%H:%M:%S", time.localtime(event.get("ts", 0)))
            attrs = event.get("attrs", {})
            detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            out.append(f"    {ts} {event.get('type', '?'):<24} {detail}")
    return "\n".join(out) + "\n"


def run_monitor(directory, interval: float = 2.0,
                iterations: Optional[int] = None, clear: bool = True,
                stream=None) -> int:
    """Refresh-loop the dashboard; Ctrl-C exits cleanly.

    ``iterations=None`` loops forever; the CLI's ``--once`` maps to 1
    (and skips the screen clear so output is pipeable).
    """
    if stream is None:
        stream = sys.stdout
    count = 0
    try:
        while iterations is None or count < iterations:
            if count:
                time.sleep(interval)
            text = render_dashboard(directory)
            if clear and stream.isatty():  # pragma: no cover - tty only
                stream.write("\x1b[2J\x1b[H")
            stream.write(text)
            stream.flush()
            count += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0
