"""Thread-aware tracing: spans, traces, and Chrome trace-event export.

The paper's evaluation is a cost breakdown — Table 4 splits index
construction into its two phases, Figures 10-11 put pruning ratios and
"% of data accessed" next to every timing.  This module provides the
substrate those numbers come from: a :class:`Trace` collects
:class:`Span` records (name, thread, start, duration, parent,
key/value attributes) from every phase of construction and query
answering, and exports them in the Chrome trace-event format that
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ render
as a per-thread timeline.

Tracing is *opt-in and free when off*: hot paths call the module-level
:func:`span` helper, which returns a shared no-op object unless a trace
was activated with :func:`use_trace` (or :func:`set_trace`).  The
enabled path appends one record per span under the trace's lock;
nothing is instrumented per-series.

Cross-thread attribution: a span started on a worker thread would see
an empty ambient stack, so code that fans out captures
:func:`current_span` *before* spawning and passes it as the explicit
``parent`` — the worker spans then nest under the phase that launched
them regardless of which thread they ran on.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import weakref
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

__all__ = [
    "Span",
    "Trace",
    "current_span",
    "get_trace",
    "io_span",
    "set_trace",
    "span",
    "use_trace",
]

#: Process id reported in exported trace events.  Worker-process spans
#: absorbed into a parent trace keep this pid but get prefixed thread
#: names, so one timeline shows all processes.
_TRACE_PID = 1

_tls = threading.local()

#: Live traces, so locks can be re-initialized in forked children.
_LIVE_TRACES: "weakref.WeakSet[Trace]" = weakref.WeakSet()


def _reinit_after_fork() -> None:
    """Make a freshly forked child safe to trace in.

    The child inherits (a) possibly-held trace locks from other parent
    threads and (b) the forking thread's ambient span stack — both are
    stale.  Locks are replaced, the stack is cleared, and the active
    trace is switched off: a worker that wants tracing creates its own
    :class:`Trace` and ships its spans home via :meth:`Trace.export_spans`.
    """
    for trace in list(_LIVE_TRACES):
        trace._lock = threading.Lock()
    _tls.stack = []
    set_trace(None)


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _span_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _jsonable(value: Any) -> Any:
    """Coerce span attribute values into JSON-friendly scalars."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        pass
    return str(value)


class Span:
    """One timed region: a context manager recording into its trace.

    Instances come from :meth:`Trace.span` (or the module-level
    :func:`span` helper) and record themselves when the ``with`` block
    exits.  ``set``/``set_attrs`` attach key/value attributes at any
    point inside the block; they end up in the exported event's
    ``args``.
    """

    __slots__ = (
        "trace",
        "name",
        "span_id",
        "parent_id",
        "thread_id",
        "thread_name",
        "start",
        "duration",
        "attributes",
        "_explicit_parent",
    )

    def __init__(
        self,
        trace: "Trace",
        name: str,
        parent: Optional["Span"] = None,
        **attributes: Any,
    ) -> None:
        self.trace = trace
        self.name = name
        self.span_id = trace._next_id()
        self._explicit_parent = parent
        self.parent_id: Optional[int] = None
        self.thread_id = 0
        self.thread_name = ""
        self.start = 0.0
        self.duration = 0.0
        self.attributes: dict[str, Any] = dict(attributes)

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attrs(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        thread = threading.current_thread()
        self.thread_id = self.trace._thread_index(thread)
        self.thread_name = thread.name
        parent = self._explicit_parent
        if isinstance(parent, Span):
            self.parent_id = parent.span_id
        else:
            stack = _span_stack()
            if stack and stack[-1].trace is self.trace:
                self.parent_id = stack[-1].span_id
        _span_stack().append(self)
        self.start = time.perf_counter() - self.trace.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.trace.epoch - self.start
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit (generator teardown etc.)
            stack.remove(self)
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.trace._record(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, tid={self.thread_id}, "
            f"start={self.start * 1e3:.3f}ms, "
            f"dur={self.duration * 1e3:.3f}ms)"
        )


class _NullSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, **attributes: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Trace:
    """A lock-protected collection of finished spans from many threads.

    Thread ids are remapped to small consecutive integers (in order of
    first appearance) so exported timelines stay readable; the original
    thread names are preserved as Chrome ``thread_name`` metadata.
    """

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        #: thread ident (or synthetic key) -> (compact tid, thread name)
        self._threads: dict = {}
        _LIVE_TRACES.add(self)

    # -- recording ----------------------------------------------------------

    def _next_id(self) -> int:
        return next(self._ids)

    def _thread_index(self, thread: threading.Thread) -> int:
        with self._lock:
            entry = self._threads.get(thread.ident)
            if entry is None:
                entry = (len(self._threads) + 1, thread.name)
                self._threads[thread.ident] = entry
            return entry[0]

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def span(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> Span:
        """Create a span; enter it with ``with`` to time a region."""
        return Span(self, name, parent=parent, **attributes)

    # -- inspection ---------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, parent: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == parent.span_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- cross-process attribution ------------------------------------------

    def export_spans(self) -> list[dict]:
        """Picklable span records for shipping across a process boundary.

        Start times are exported on the absolute ``time.perf_counter``
        axis (CLOCK_MONOTONIC on Linux, shared by every process of one
        boot), so a parent trace can re-base them onto its own epoch.
        """
        with self._lock:
            spans = list(self._spans)
        return [
            {
                "name": s.name,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "thread_name": s.thread_name,
                "start_abs": self.epoch + s.start,
                "duration": s.duration,
                "attributes": dict(s.attributes),
            }
            for s in spans
        ]

    def absorb_spans(
        self,
        records: list[dict],
        thread_prefix: str = "",
        parent: Optional[Span] = None,
    ) -> None:
        """Merge a worker process's :meth:`export_spans` into this trace.

        Span ids are remapped into this trace's id space (parent links
        inside the batch are preserved); top-level worker spans hang
        under ``parent`` when given.  Worker threads appear as synthetic
        timeline rows named ``<thread_prefix><thread_name>``, which is
        the cross-process attribution the per-shard build/query spans
        rely on.  Clock skew (a non-shared monotonic clock under spawn
        on some platforms) degrades to clamped start times, never an
        error.
        """
        id_map: dict[int, int] = {}
        absorbed: list[tuple[Span, Optional[int]]] = []
        for record in records:
            s = Span(self, record["name"])
            id_map[record["span_id"]] = s.span_id
            s.start = max(record["start_abs"] - self.epoch, 0.0)
            s.duration = record["duration"]
            s.attributes = dict(record["attributes"])
            thread_name = f"{thread_prefix}{record['thread_name']}"
            with self._lock:
                entry = self._threads.get(thread_name)
                if entry is None:
                    entry = (len(self._threads) + 1, thread_name)
                    self._threads[thread_name] = entry
            s.thread_id = entry[0]
            s.thread_name = thread_name
            absorbed.append((s, record["parent_id"]))
        for s, original_parent in absorbed:
            if original_parent in id_map:
                s.parent_id = id_map[original_parent]
            elif parent is not None:
                s.parent_id = parent.span_id
            self._record(s)

    # -- export -------------------------------------------------------------

    def to_chrome_events(self) -> list[dict]:
        """Trace-event dicts: thread metadata plus one ``X`` per span."""
        with self._lock:
            spans = list(self._spans)
            threads = sorted(self._threads.values())
        events: list[dict] = [
            {
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
            for tid, name in threads
        ]
        for s in spans:
            args = {k: _jsonable(v) for k, v in s.attributes.items()}
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            events.append(
                {
                    "ph": "X",
                    "pid": _TRACE_PID,
                    "tid": s.thread_id,
                    "name": s.name,
                    "ts": round(s.start * 1e6, 3),
                    "dur": round(s.duration * 1e6, 3),
                    "args": args,
                }
            )
        return events

    def to_chrome_json(self) -> str:
        """The Chrome trace-event file format (JSON object form)."""
        return json.dumps(
            {
                "traceEvents": self.to_chrome_events(),
                "displayTimeUnit": "ms",
                "otherData": {"trace_name": self.name},
            }
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the Chrome-format trace to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_chrome_json())
        return path


# ---------------------------------------------------------------------------
# The ambient active trace
# ---------------------------------------------------------------------------

_active: Optional[Trace] = None


def get_trace() -> Optional[Trace]:
    """The currently active trace, or None when tracing is off."""
    return _active


def set_trace(trace: Optional[Trace]) -> None:
    """Activate ``trace`` process-wide (None turns tracing off)."""
    global _active
    _active = trace


@contextmanager
def use_trace(trace: Trace) -> Iterator[Trace]:
    """Activate ``trace`` for the duration of a ``with`` block."""
    global _active
    previous = _active
    _active = trace
    try:
        yield trace
    finally:
        _active = previous


def span(name: str, parent: Optional[Span] = None, **attributes: Any):
    """A span on the active trace — or a shared no-op when tracing is off.

    This is the call instrumented code uses; the disabled path is one
    global read and returns a singleton, so leaving instrumentation in
    hot(ish) paths costs nothing measurable.
    """
    trace = _active
    if trace is None:
        return NULL_SPAN
    return trace.span(name, parent=parent, **attributes)


def current_span() -> Optional[Span]:
    """The innermost open span of this thread on the active trace.

    Returns None when tracing is off — safe to pass straight into
    ``span(..., parent=...)``.
    """
    trace = _active
    if trace is None:
        return None
    stack = getattr(_tls, "stack", None)
    if stack:
        top = stack[-1]
        if top.trace is trace:
            return top
    return None


@contextmanager
def io_span(name: str, stats, parent: Optional[Span] = None, **attributes):
    """A span whose attributes carry the IOStats delta of its body.

    ``stats`` is an :class:`repro.storage.iostats.IOStats` (or None);
    the snapshot delta across the block is attached as ``read_calls``,
    ``random_seeks``, ``bytes_read`` etc.  When tracing is off the
    snapshots are skipped entirely.
    """
    if _active is None:
        yield NULL_SPAN
        return
    before = stats.snapshot() if stats is not None else None
    with span(name, parent=parent, **attributes) as s:
        try:
            yield s
        finally:
            if before is not None:
                delta = stats.snapshot() - before
                s.set_attrs(
                    read_calls=delta.read_calls,
                    write_calls=delta.write_calls,
                    random_seeks=delta.random_seeks,
                    sequential_reads=delta.sequential_reads,
                    bytes_read=delta.bytes_read,
                    bytes_written=delta.bytes_written,
                )
