"""Time-windowed telemetry: rolling metrics, SLO tracking, the hub.

The PR-3 registry records *cumulative* numbers that only surface
post-hoc.  A serving engine needs the complement: what happened in the
last minute — rolling p50/p95/p99 latency, request rates, SLO burn,
shard health *over time*.  This module provides it:

* :class:`WindowedCounter` / :class:`WindowedHistogram` — a ring of
  fixed-duration buckets keyed by *absolute* epoch
  (``int(clock() // bucket_width)``), so two instruments observing the
  same values under the same clock are value-identical after a merge
  no matter whether they lived in threads of one process or in
  killed-and-respawned shard workers.  The clock is injectable for
  deterministic tests.
* :class:`SloTracker` — configurable latency/coverage objectives with
  windowed attainment and burn-rate readouts.
* :class:`TelemetryHub` — one bundle of registry + event journal + SLO
  tracker, activated per run.  Module-level helpers
  (:func:`observe_query`, :func:`observe_search`, :func:`emit_event`,
  :func:`watch_process`) are single-global-read no-ops when no hub is
  active, so instrumented hot paths stay free in production.

Like the rest of ``repro.obs`` this imports nothing from the rest of
the package; everything here is fork-safe via ``os.register_at_fork``.
"""

from __future__ import annotations

import contextlib
import math
import os
import threading
import time
import weakref
from typing import Callable, Iterable, Optional

from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry, percentile_from_sorted

__all__ = [
    "SloTracker",
    "TelemetryHub",
    "WindowedCounter",
    "WindowedHistogram",
    "emit_event",
    "get_hub",
    "observe_query",
    "observe_search",
    "set_hub",
    "use_hub",
    "watch_process",
]

#: Default rolling window: 60 seconds in 5-second buckets.
DEFAULT_WINDOW_SECONDS = 60.0
DEFAULT_NUM_BUCKETS = 12

#: Live windowed instruments, for post-fork lock re-initialization.
_LIVE_WINDOWED: "weakref.WeakSet" = weakref.WeakSet()


def _reinit_after_fork() -> None:
    global _hub
    _hub = None
    for instrument in list(_LIVE_WINDOWED):
        instrument._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reinit_after_fork)


class _Windowed:
    """Shared bucket-ring plumbing for the windowed instruments.

    Buckets are keyed by absolute epoch number so the time axis is a
    property of the *clock*, not of the instrument: merging states that
    were produced by different processes (or by the same instrument
    before and after a fork) aligns buckets exactly.  Expired buckets
    are pruned opportunistically on write.
    """

    __slots__ = ("_lock", "_buckets", "_clock", "window_seconds",
                 "num_buckets", "bucket_width", "__weakref__")

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window_seconds <= 0 or num_buckets <= 0:
            raise ValueError("window_seconds and num_buckets must be positive")
        self._lock = threading.Lock()
        self._buckets: dict = {}
        self._clock = clock if clock is not None else time.time
        self.window_seconds = float(window_seconds)
        self.num_buckets = int(num_buckets)
        self.bucket_width = self.window_seconds / self.num_buckets
        _LIVE_WINDOWED.add(self)

    def _epoch(self, now: Optional[float] = None) -> int:
        if now is None:
            now = self._clock()
        return int(now // self.bucket_width)

    def _prune(self, current_epoch: int) -> None:
        # Caller holds the lock.  Keep the last ``num_buckets`` epochs.
        floor = current_epoch - self.num_buckets + 1
        if len(self._buckets) > self.num_buckets:
            for epoch in [e for e in self._buckets if e < floor]:
                del self._buckets[epoch]

    def _live_items(self, now: Optional[float] = None) -> list:
        current = self._epoch(now)
        floor = current - self.num_buckets + 1
        with self._lock:
            return sorted(
                (e, v) for e, v in self._buckets.items()
                if floor <= e <= current
            )


class WindowedCounter(_Windowed):
    """A counter with an all-time total plus a rolling-window view."""

    __slots__ = ("_total",)

    def __init__(self, window_seconds=DEFAULT_WINDOW_SECONDS,
                 num_buckets=DEFAULT_NUM_BUCKETS, clock=None) -> None:
        super().__init__(window_seconds, num_buckets, clock)
        self._total = 0.0

    def inc(self, amount: float = 1) -> None:
        epoch = self._epoch()
        with self._lock:
            self._buckets[epoch] = self._buckets.get(epoch, 0.0) + amount
            self._total += amount
            self._prune(epoch)

    add = inc

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def window_total(self, now: Optional[float] = None) -> float:
        return float(sum(v for _, v in self._live_items(now)))

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the covered part of the window.

        The denominator is the span from the oldest live bucket's start
        to *now* (clamped to the window), so a counter that has only
        been alive two seconds reports a two-second rate instead of
        diluting over the full window.
        """
        if now is None:
            now = self._clock()
        items = self._live_items(now)
        if not items:
            return 0.0
        oldest_start = items[0][0] * self.bucket_width
        covered = min(self.window_seconds,
                      max(now - oldest_start, self.bucket_width))
        return float(sum(v for _, v in items)) / covered

    def summary(self, now: Optional[float] = None) -> dict:
        return {
            "total": self.total,
            "window_total": self.window_total(now),
            "rate": self.rate(now),
            "window_seconds": self.window_seconds,
        }

    # -- cross-process flush ------------------------------------------------

    def export_state(self) -> dict:
        with self._lock:
            return {
                "kind": "windowed_counter",
                "window_seconds": self.window_seconds,
                "num_buckets": self.num_buckets,
                "total": self._total,
                "buckets": dict(self._buckets),
            }

    def merge_state(self, state: dict) -> None:
        buckets = state.get("buckets", {})
        with self._lock:
            for epoch, value in buckets.items():
                epoch = int(epoch)
                self._buckets[epoch] = self._buckets.get(epoch, 0.0) + value
            self._total += state.get("total", 0.0)
            if self._buckets:
                self._prune(max(self._epoch(), max(self._buckets)))


class WindowedHistogram(_Windowed):
    """A value distribution over a rolling window: p50/p95/p99, rate.

    Buckets hold the raw observations of their epoch; percentiles over
    the live window are computed from the sorted concatenation, which
    makes them order-independent — thread interleaving or per-process
    merge order cannot change the result.
    """

    __slots__ = ("_total_count",)

    def __init__(self, window_seconds=DEFAULT_WINDOW_SECONDS,
                 num_buckets=DEFAULT_NUM_BUCKETS, clock=None) -> None:
        super().__init__(window_seconds, num_buckets, clock)
        self._total_count = 0

    def observe(self, value: float) -> None:
        epoch = self._epoch()
        with self._lock:
            bucket = self._buckets.get(epoch)
            if bucket is None:
                bucket = self._buckets[epoch] = []
            bucket.append(float(value))
            self._total_count += 1
            self._prune(epoch)

    @property
    def total_count(self) -> int:
        with self._lock:
            return self._total_count

    def window_values(self, now: Optional[float] = None) -> list:
        values: list = []
        for _, bucket in self._live_items(now):
            values.extend(bucket)
        return values

    def rate(self, now: Optional[float] = None) -> float:
        if now is None:
            now = self._clock()
        items = self._live_items(now)
        if not items:
            return 0.0
        oldest_start = items[0][0] * self.bucket_width
        covered = min(self.window_seconds,
                      max(now - oldest_start, self.bucket_width))
        return sum(len(b) for _, b in items) / covered

    def summary(self, now: Optional[float] = None) -> dict:
        values = sorted(self.window_values(now))
        if not values:
            return {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                    "p95": 0.0, "p99": 0.0, "max": 0.0, "rate": 0.0,
                    "total_count": self.total_count,
                    "window_seconds": self.window_seconds}
        return {
            "count": len(values),
            "mean": math.fsum(values) / len(values),
            "min": values[0],
            "p50": percentile_from_sorted(values, 50.0),
            "p95": percentile_from_sorted(values, 95.0),
            "p99": percentile_from_sorted(values, 99.0),
            "max": values[-1],
            "rate": self.rate(now),
            "total_count": self.total_count,
            "window_seconds": self.window_seconds,
        }

    # -- cross-process flush ------------------------------------------------

    def export_state(self) -> dict:
        with self._lock:
            return {
                "kind": "windowed_histogram",
                "window_seconds": self.window_seconds,
                "num_buckets": self.num_buckets,
                "total_count": self._total_count,
                "buckets": {e: list(b) for e, b in self._buckets.items()},
            }

    def merge_state(self, state: dict) -> None:
        buckets = state.get("buckets", {})
        with self._lock:
            for epoch, values in buckets.items():
                epoch = int(epoch)
                bucket = self._buckets.get(epoch)
                if bucket is None:
                    bucket = self._buckets[epoch] = []
                bucket.extend(float(v) for v in values)
            self._total_count += int(state.get("total_count", 0))
            if self._buckets:
                self._prune(max(self._epoch(), max(self._buckets)))


class SloTracker:
    """Windowed attainment against latency and coverage objectives.

    ``latency_threshold`` is the "good event" bound (a query is good
    when it completes within it), ``latency_target`` the demanded
    fraction of good events; ``coverage_target`` bounds how much of the
    dataset degraded answers may silently drop on average.  Burn rate
    is the standard SRE readout: observed error rate over the error
    budget — 1.0 means exactly consuming the budget, >1 means burning
    it faster than allowed.
    """

    def __init__(
        self,
        latency_threshold: float = 0.5,
        latency_target: float = 0.99,
        coverage_target: float = 0.999,
        window_seconds: float = 300.0,
        num_buckets: int = 30,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.latency_threshold = float(latency_threshold)
        self.latency_target = float(latency_target)
        self.coverage_target = float(coverage_target)
        kw = dict(window_seconds=window_seconds, num_buckets=num_buckets,
                  clock=clock)
        self._requests = WindowedCounter(**kw)
        self._good = WindowedCounter(**kw)
        self._degraded = WindowedCounter(**kw)
        self._coverage = WindowedHistogram(**kw)

    def observe(self, latency_seconds: float, coverage: float = 1.0,
                degraded: bool = False) -> None:
        self._requests.inc()
        if latency_seconds <= self.latency_threshold:
            self._good.inc()
        if degraded:
            self._degraded.inc()
        self._coverage.observe(float(coverage))

    @staticmethod
    def _burn(error_rate: float, target: float) -> float:
        budget = 1.0 - target
        if budget <= 0.0:
            return 0.0 if error_rate <= 0.0 else math.inf
        return error_rate / budget

    def status(self, now: Optional[float] = None) -> dict:
        requests = self._requests.window_total(now)
        good = self._good.window_total(now)
        degraded = self._degraded.window_total(now)
        coverage = self._coverage.summary(now)
        latency_attainment = good / requests if requests else 1.0
        mean_coverage = coverage["mean"] if coverage["count"] else 1.0
        latency_burn = self._burn(1.0 - latency_attainment,
                                  self.latency_target)
        coverage_burn = self._burn(max(0.0, 1.0 - mean_coverage),
                                   self.coverage_target)
        return {
            "window_seconds": self._requests.window_seconds,
            "requests": requests,
            "latency_threshold": self.latency_threshold,
            "latency_target": self.latency_target,
            "latency_attainment": latency_attainment,
            "latency_burn": latency_burn,
            "coverage_target": self.coverage_target,
            "coverage_attainment": mean_coverage,
            "coverage_burn": coverage_burn,
            "degraded": degraded,
            "healthy": bool(latency_burn <= 1.0 and coverage_burn <= 1.0),
        }

    # -- cross-process flush ------------------------------------------------

    def export_state(self) -> dict:
        return {
            "requests": self._requests.export_state(),
            "good": self._good.export_state(),
            "degraded": self._degraded.export_state(),
            "coverage": self._coverage.export_state(),
        }

    def merge_state(self, state: dict) -> None:
        self._requests.merge_state(state.get("requests", {}))
        self._good.merge_state(state.get("good", {}))
        self._degraded.merge_state(state.get("degraded", {}))
        self._coverage.merge_state(state.get("coverage", {}))


class TelemetryHub:
    """One run's telemetry bundle: registry + journal + SLO tracker.

    The registry carries both the cumulative PR-3 instruments and the
    windowed family (via :meth:`MetricsRegistry.windowed_counter` /
    :meth:`~MetricsRegistry.windowed_histogram`), so one
    ``export_state``/``merge_state`` round-trip moves everything a
    shard worker measured.  An optional resource sampler can be
    attached so instrumented code (shard supervisors) can register
    worker pids as they spawn via :func:`watch_process`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        journal: Optional[EventJournal] = None,
        slo: Optional[SloTracker] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.clock = clock if clock is not None else time.time
        self.registry = registry if registry is not None else MetricsRegistry()
        self.journal = journal if journal is not None else EventJournal(
            clock=self.clock
        )
        self.slo = slo if slo is not None else SloTracker(clock=self.clock)
        self.sampler = None  # attached by the CLI when /proc is available

    # -- canonical observations ---------------------------------------------

    def observe_query(self, seconds: float, coverage: float = 1.0,
                      degraded: bool = False) -> None:
        """One merged (coordinator-level) query answer."""
        self.registry.windowed_counter("query.requests").inc()
        self.registry.windowed_histogram(
            "query.latency_seconds"
        ).observe(seconds)
        self.registry.windowed_histogram("query.coverage").observe(coverage)
        if degraded:
            self.registry.windowed_counter("query.degraded").inc()
        self.slo.observe(seconds, coverage=coverage, degraded=degraded)

    def observe_search(self, seconds: float) -> None:
        """One engine-level (per-shard) search, distinct from
        coordinator latency so sharded fan-out is not double-counted."""
        self.registry.windowed_counter("engine.searches").inc()
        self.registry.windowed_histogram(
            "engine.search_seconds"
        ).observe(seconds)

    def watch_process(self, label: str, pid: int) -> None:
        sampler = self.sampler
        if sampler is not None:
            sampler.watch(label, pid)

    # -- cross-process flush ------------------------------------------------

    def export_state(self) -> dict:
        return {
            "metrics": self.registry.export_state(),
            "events": self.journal.export_state(),
            "slo": self.slo.export_state(),
        }

    def merge_state(self, state: dict, prefix: str = "",
                    **event_attrs) -> None:
        self.registry.merge_state(state.get("metrics", {}), prefix=prefix)
        self.journal.merge_state(state.get("events", []), **event_attrs)
        if "slo" in state:
            self.slo.merge_state(state["slo"])


# ---------------------------------------------------------------------------
# Module-level activation: one global read on the fast path
# ---------------------------------------------------------------------------

_hub: Optional[TelemetryHub] = None


def get_hub() -> Optional[TelemetryHub]:
    """The active hub, or None when telemetry is off."""
    return _hub


def set_hub(hub: Optional[TelemetryHub]) -> Optional[TelemetryHub]:
    """Install ``hub`` as the active hub; returns the previous one."""
    global _hub
    previous = _hub
    _hub = hub
    return previous


@contextlib.contextmanager
def use_hub(hub: TelemetryHub):
    """Activate ``hub`` for the duration of the block."""
    previous = set_hub(hub)
    try:
        yield hub
    finally:
        set_hub(previous)


def observe_query(seconds: float, coverage: float = 1.0,
                  degraded: bool = False) -> None:
    hub = _hub
    if hub is not None:
        hub.observe_query(seconds, coverage=coverage, degraded=degraded)


def observe_search(seconds: float) -> None:
    hub = _hub
    if hub is not None:
        hub.observe_search(seconds)


def emit_event(etype: str, **attrs) -> None:
    hub = _hub
    if hub is not None:
        hub.journal.emit(etype, **attrs)


def watch_process(label: str, pid: int) -> None:
    hub = _hub
    if hub is not None:
        hub.watch_process(label, pid)


def merge_windowed_states(
    instrument, states: Iterable[dict]
) -> None:
    """Fold several exported windowed states into one instrument."""
    for state in states:
        instrument.merge_state(state)
