"""Background resource sampler: RSS, CPU, I/O, fds from ``/proc``.

Long builds and serving loops need resource pressure visible next to
the latency numbers.  :class:`ResourceSampler` polls ``/proc/<pid>/``
for a set of watched processes — the coordinator plus every shard
worker the supervisors register — and publishes the readings as gauges
in a :class:`~repro.obs.metrics.MetricsRegistry`:

``proc.rss_bytes`` etc. for the coordinator (empty label) and
``shard.<i>.proc.rss_bytes`` etc. for a worker watched under the label
``shard.<i>``.  Dead pids are dropped silently — workers are expected
to die (and be respawned under a fresh pid by the supervisor).

Pure stdlib, no psutil; on platforms without ``/proc`` the sampler
degrades to a no-op (:func:`proc_available` gates the CLI wiring).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional

__all__ = ["ResourceSampler", "proc_available", "sample_process"]

#: Gauge suffixes published per watched process.
SAMPLE_FIELDS = (
    "rss_bytes",
    "cpu_seconds",
    "read_bytes",
    "written_bytes",
    "open_fds",
    "threads",
)


def _sysconf(name: str, default: int) -> int:
    try:
        value = os.sysconf(name)
    except (AttributeError, OSError, ValueError):
        return default
    return value if value > 0 else default


_PAGE_SIZE = _sysconf("SC_PAGE_SIZE", 4096)
_CLOCK_TICKS = _sysconf("SC_CLK_TCK", 100)


def proc_available() -> bool:
    """Whether ``/proc/self`` readings exist on this platform."""
    return os.path.isdir("/proc/self")


def sample_process(pid: Optional[int] = None) -> Optional[dict]:
    """One reading for ``pid`` (default: this process).

    Returns None when the process is gone or ``/proc`` is unavailable;
    individual files that cannot be read (``io`` needs permissions some
    containers withhold) just omit their keys.
    """
    base = f"/proc/{pid}" if pid is not None else "/proc/self"
    sample: dict = {}
    try:
        with open(f"{base}/stat", "rb") as fh:
            stat = fh.read().decode("ascii", "replace")
    except OSError:
        return None
    # Field 2 (comm) may contain spaces/parens; split after the last ')'.
    fields = stat[stat.rfind(")") + 2:].split()
    # stat fields 14/15 (utime/stime) land at offsets 11/12 here; 20/24
    # (num_threads/rss) at 17/21.
    try:
        sample["cpu_seconds"] = (
            (int(fields[11]) + int(fields[12])) / _CLOCK_TICKS
        )
        sample["threads"] = int(fields[17])
        sample["rss_bytes"] = int(fields[21]) * _PAGE_SIZE
    except (IndexError, ValueError):
        pass
    try:
        with open(f"{base}/io", "rb") as fh:
            for line in fh.read().decode("ascii", "replace").splitlines():
                if line.startswith("read_bytes:"):
                    sample["read_bytes"] = int(line.split(":", 1)[1])
                elif line.startswith("write_bytes:"):
                    sample["written_bytes"] = int(line.split(":", 1)[1])
    except OSError:
        pass
    try:
        sample["open_fds"] = len(os.listdir(f"{base}/fd"))
    except OSError:
        pass
    return sample


class ResourceSampler:
    """Polls watched pids and publishes ``*.proc.*`` gauges.

    ``watch(label, pid)`` registers a process; the empty label means
    the coordinator (gauges named ``proc.*``), any other label is used
    as a prefix (``shard.0`` → ``shard.0.proc.*``).  ``sample_once()``
    is the synchronous core (tests call it directly with no thread);
    ``start()``/``stop()`` run it on a daemon thread every
    ``interval`` seconds.
    """

    def __init__(
        self,
        registry,
        interval: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry
        self.interval = float(interval)
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._watches: dict = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def watch(self, label: str, pid: int) -> None:
        with self._lock:
            self._watches[str(label)] = int(pid)

    def unwatch(self, label: str) -> None:
        with self._lock:
            self._watches.pop(str(label), None)

    @property
    def watched(self) -> dict:
        with self._lock:
            return dict(self._watches)

    @staticmethod
    def prefix_for(label: str) -> str:
        return "proc" if not label else f"{label}.proc"

    def sample_once(self) -> dict:
        """Sample every watched pid; returns ``{label: reading}``.

        Dead pids are unwatched.  Readings also land as gauges in the
        registry, so they ride the normal export/snapshot paths.
        """
        readings: dict = {}
        for label, pid in self.watched.items():
            sample = sample_process(pid)
            if sample is None:
                self.unwatch(label)
                continue
            readings[label] = sample
            prefix = self.prefix_for(label)
            for key, value in sample.items():
                self.registry.gauge(f"{prefix}.{key}").set(value)
        return readings

    # -- background loop ----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - never kill the host
                pass
            self._stop.wait(self.interval)
