"""Unified observability: tracing, metrics, telemetry, EXPLAIN.

One instrumented source for every cost number the reproduction reports:

* :mod:`repro.obs.tracing` — thread-aware spans collected into a
  :class:`Trace`, exported as Chrome/Perfetto trace-event JSON;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms with
  p50/p95/max summaries, bridged from ``QueryProfile``/``IOSnapshot``;
* :mod:`repro.obs.telemetry` — time-windowed instruments (rolling
  p50/p95/p99, rates), SLO tracking, and the :class:`TelemetryHub`
  activated per run;
* :mod:`repro.obs.events` — the typed operational event journal;
* :mod:`repro.obs.sampler` — /proc resource sampling for the
  coordinator and shard workers;
* :mod:`repro.obs.exporter` — OpenMetrics text export and the
  :class:`TelemetrySink` spool writer;
* :mod:`repro.obs.monitor` — the ``repro monitor`` dashboard over a
  spool directory;
* :mod:`repro.obs.profiling` — the shared :func:`timed_profile` helper
  that replaces per-method timing boilerplate;
* :mod:`repro.obs.explain` — per-query EXPLAIN reports;
* :mod:`repro.obs.logsetup` — handler configuration for entry points.

Instrumented code imports the package and calls ``obs.span(...)`` /
``obs.emit_event(...)`` / ``obs.observe_query(...)``; all are no-ops
until a trace (``obs.use_trace``) or a telemetry hub
(``obs.use_hub``) is activated.

This module is the *only* supported import surface: ``from repro
import obs`` (enforced by ruff's banned-api rule for ``core/`` and the
CLI).  The submodules are implementation detail and may be
reorganized freely.
"""

from repro.obs.events import EVENT_TYPES, Event, EventJournal
from repro.obs.explain import explain_profile, explain_workload_summary
from repro.obs.exporter import (
    TelemetrySink,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.logsetup import configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_sorted,
    record_batch_stats,
    record_build,
    record_io,
    record_profile,
)
from repro.obs.monitor import render_dashboard, run_monitor
from repro.obs.profiling import timed_profile
from repro.obs.sampler import ResourceSampler, proc_available
from repro.obs.telemetry import (
    SloTracker,
    TelemetryHub,
    WindowedCounter,
    WindowedHistogram,
    emit_event,
    get_hub,
    observe_query,
    observe_search,
    set_hub,
    use_hub,
    watch_process,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Trace,
    current_span,
    get_trace,
    io_span,
    set_trace,
    span,
    use_trace,
)

__all__ = [
    "EVENT_TYPES",
    "NULL_SPAN",
    "Counter",
    "Event",
    "EventJournal",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ResourceSampler",
    "SloTracker",
    "Span",
    "TelemetryHub",
    "TelemetrySink",
    "Trace",
    "WindowedCounter",
    "WindowedHistogram",
    "configure_logging",
    "current_span",
    "emit_event",
    "explain_profile",
    "explain_workload_summary",
    "get_hub",
    "get_trace",
    "io_span",
    "observe_query",
    "observe_search",
    "parse_openmetrics",
    "percentile_from_sorted",
    "proc_available",
    "record_batch_stats",
    "record_build",
    "record_io",
    "record_profile",
    "render_dashboard",
    "render_openmetrics",
    "run_monitor",
    "set_hub",
    "set_trace",
    "span",
    "timed_profile",
    "use_hub",
    "use_trace",
    "watch_process",
]
