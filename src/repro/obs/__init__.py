"""Unified observability: tracing, metrics, profiling, logging, EXPLAIN.

One instrumented source for every cost number the reproduction reports:

* :mod:`repro.obs.tracing` — thread-aware spans collected into a
  :class:`Trace`, exported as Chrome/Perfetto trace-event JSON;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms with
  p50/p95/max summaries, bridged from ``QueryProfile``/``IOSnapshot``;
* :mod:`repro.obs.profiling` — the shared :func:`timed_profile` helper
  that replaces per-method timing boilerplate;
* :mod:`repro.obs.explain` — per-query EXPLAIN reports;
* :mod:`repro.obs.logsetup` — handler configuration for entry points.

Instrumented code imports the module and calls ``obs.span(...)`` /
``obs.io_span(...)``; both are no-ops until a trace is activated with
``obs.use_trace(trace)``.
"""

from repro.obs.explain import explain_profile, explain_workload_summary
from repro.obs.logsetup import configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_build,
    record_io,
    record_profile,
)
from repro.obs.profiling import timed_profile
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Trace,
    current_span,
    get_trace,
    io_span,
    set_trace,
    span,
    use_trace,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "configure_logging",
    "current_span",
    "explain_profile",
    "explain_workload_summary",
    "get_trace",
    "io_span",
    "record_build",
    "record_io",
    "record_profile",
    "set_trace",
    "span",
    "timed_profile",
    "use_trace",
]
