"""The shared query-timing helper every method uses.

Each of the six baselines used to hand-roll the same bookkeeping around
its ``knn`` body::

    started = time.perf_counter()
    ...
    profile.path = "..."
    profile.time_total = time.perf_counter() - started

:func:`timed_profile` replaces that: it times the block into the given
:class:`~repro.core.query.QueryProfile`, stamps the access path,
snapshots an :class:`~repro.storage.iostats.IOStats` delta into
``profile.io`` (so harnesses no longer have to remember to), and — when
tracing is active — wraps the block in a span carrying the profile's
cost attributes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.tracing import span

__all__ = ["timed_profile"]


@contextmanager
def timed_profile(
    profile,
    path: Optional[str] = None,
    io_stats=None,
    span_name: Optional[str] = None,
    **attributes: Any,
) -> Iterator:
    """Time a query body into ``profile``; yields the profile.

    ``path`` is stamped onto ``profile.path`` when the block exits (the
    body may overwrite it by assigning first — the stamp only applies
    when given).  ``io_stats`` (an IOStats, or None for in-memory data)
    has its snapshot delta stored in ``profile.io``.  The block is also
    recorded as a trace span named ``span_name`` (default
    ``query.<path>``) when tracing is active.  Timing and I/O are filled
    even when the body raises, so partial failures still report cost.
    """
    name = span_name if span_name is not None else f"query.{path or 'knn'}"
    before = io_stats.snapshot() if io_stats is not None else None
    started = time.perf_counter()
    with span(name, **attributes) as s:
        try:
            yield profile
        finally:
            profile.time_total = time.perf_counter() - started
            if path is not None:
                profile.path = path
            if before is not None:
                profile.io = io_stats.snapshot() - before
            s.set_attrs(
                path=profile.path,
                seconds=profile.time_total,
                series_accessed=profile.series_accessed,
                distance_computations=profile.distance_computations,
            )
            if profile.io is not None:
                s.set_attrs(
                    random_seeks=profile.io.random_seeks,
                    bytes_read=profile.io.bytes_read,
                )
