"""Metrics registry: counters, gauges, and summarizing histograms.

The hardware-independent cost metrics the reproduction reports next to
every timing (distance computations, series accessed, pruning ratios,
I/O operation counts) accumulate here instead of in per-harness ad-hoc
lists.  :class:`MetricsRegistry` hands out named instruments that are
individually thread-safe; :func:`record_profile` and :func:`record_io`
bridge the existing :class:`~repro.core.query.QueryProfile` and
:class:`~repro.storage.iostats.IOSnapshot` records into a registry so
every benchmark summary comes from one instrumented source.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Optional

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "record_build",
    "record_io",
    "record_profile",
]

#: Every live registry, tracked so locks can be re-initialized in forked
#: children (a lock held by another thread at fork time would deadlock
#: the child forever; see :func:`_reinit_after_fork`).
_LIVE_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def _reinit_after_fork() -> None:
    """Replace every registry/instrument lock in a freshly forked child.

    The child is single-threaded at this point, so no lock can be
    legitimately held — any lock state inherited from the parent is
    stale.  Instruments keep their values: a shard build worker forked
    mid-benchmark still reports whatever the parent had accumulated plus
    its own work, and the parent-side merge (:meth:`MetricsRegistry.
    merge_state`) is responsible for not double-counting.
    """
    for registry in list(_LIVE_REGISTRIES):
        registry._lock = threading.Lock()
        for instrument in (
            list(registry._counters.values())
            + list(registry._gauges.values())
            + list(registry._histograms.values())
        ):
            instrument._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reinit_after_fork)


class Counter:
    """A monotonically increasing, thread-safe count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    add = inc

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe last-value-wins measurement."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A thread-safe value distribution with percentile summaries.

    Values are kept exactly (benchmark workloads observe at most a few
    thousand per histogram); :meth:`summary` reports count, mean, min,
    p50, p95, and max.
    """

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def extend(self, values) -> None:
        """Bulk-observe raw values (the child-process merge path)."""
        coerced = [float(v) for v in values]
        with self._lock:
            self._values.extend(coerced)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def summary(self) -> dict:
        with self._lock:
            values = np.asarray(self._values, dtype=np.float64)
        if values.shape[0] == 0:
            return {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                    "p95": 0.0, "max": 0.0}
        return {
            "count": int(values.shape[0]),
            "mean": float(values.mean()),
            "min": float(values.min()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "max": float(values.max()),
        }


class MetricsRegistry:
    """Named instruments, created on first use and safe to share.

    Registries are *fork-safe*: their locks (and every instrument's) are
    re-initialized in forked children, and a child's whole registry can
    be flushed across a process boundary as a plain dict
    (:meth:`export_state`) and folded into the parent's registry
    (:meth:`merge_state`) — counters add, gauges take the child's last
    value, histograms append the child's raw observations.  This is how
    shard build/query workers report `shard.*` metrics to the
    coordinator without ever sharing a lock across processes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        _LIVE_REGISTRIES.add(self)

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def summary(self) -> dict:
        """A JSON-friendly snapshot of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.summary() for k, v in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- cross-process flush --------------------------------------------------

    def export_state(self) -> dict:
        """A picklable snapshot of every instrument, raw values included.

        Unlike :meth:`summary`, histograms are exported as their full
        value lists so a parent-side merge preserves percentiles exactly.
        This is the payload a worker process sends home before exiting.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in counters.items()},
            "gauges": {k: v.value for k, v in gauges.items()},
            "histograms": {k: v.values for k, v in histograms.items()},
        }

    def merge_state(self, state: dict, prefix: str = "") -> None:
        """Fold a child's :meth:`export_state` into this registry.

        Counters accumulate, gauges take the child's value, histogram
        observations append.  ``prefix`` namespaces every merged name
        (e.g. ``shard.0.``) so per-worker provenance survives the merge.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(f"{prefix}{name}").add(int(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(f"{prefix}{name}").set(value)
        for name, values in state.get("histograms", {}).items():
            self.histogram(f"{prefix}{name}").extend(values)


# ---------------------------------------------------------------------------
# Bridges from the existing measurement records
# ---------------------------------------------------------------------------


def record_io(registry: MetricsRegistry, snapshot, prefix: str = "io") -> None:
    """Accumulate an :class:`IOSnapshot` (usually a delta) into counters."""
    registry.counter(f"{prefix}.read_calls").add(snapshot.read_calls)
    registry.counter(f"{prefix}.write_calls").add(snapshot.write_calls)
    registry.counter(f"{prefix}.random_seeks").add(snapshot.random_seeks)
    registry.counter(f"{prefix}.sequential_reads").add(
        snapshot.sequential_reads
    )
    registry.counter(f"{prefix}.bytes_read").add(snapshot.bytes_read)
    registry.counter(f"{prefix}.bytes_written").add(snapshot.bytes_written)


def record_build(registry: MetricsRegistry, report, prefix: str = "build") -> None:
    """Feed one :class:`~repro.core.index.BuildReport` into the registry.

    Throughput and the per-phase wall-clock breakdown (Table 4's shape:
    routing, HBuffer stores, splits, flushes) land in gauges; the work
    counters accumulate so repeated builds in one process sum up.
    """
    registry.gauge(f"{prefix}.series_per_sec").set(report.series_per_sec)
    registry.gauge(f"{prefix}.build_seconds").set(report.build_seconds)
    registry.gauge(f"{prefix}.write_seconds").set(report.write_seconds)
    registry.gauge(f"{prefix}.route_seconds").set(report.route_seconds)
    registry.gauge(f"{prefix}.store_seconds").set(report.store_seconds)
    registry.gauge(f"{prefix}.split_seconds").set(report.split_seconds)
    registry.gauge(f"{prefix}.flush_seconds").set(report.flush_seconds)
    registry.counter(f"{prefix}.num_series").add(report.num_series)
    registry.counter(f"{prefix}.splits").add(report.splits)
    registry.counter(f"{prefix}.flushes").add(report.flushes)
    # Supervision counters exist only on ShardedBuildReport; a plain
    # BuildReport records nothing (no fake zero-series).
    for name in ("worker_restarts", "requeued_tasks", "task_retries"):
        value = getattr(report, name, 0)
        if value:
            registry.counter(f"{prefix}.{name}").add(int(value))
    if report.io is not None:
        record_io(registry, report.io, prefix=f"{prefix}.io")


def record_profile(
    registry: MetricsRegistry,
    profile,
    num_series: Optional[int] = None,
    prefix: str = "query",
) -> None:
    """Feed one :class:`QueryProfile` into the registry's instruments.

    Timings land in histograms (so summaries report p50/p95/max), work
    counters accumulate, and the per-path count makes access-path
    selection visible (``query.path.<name>``).
    """
    registry.counter(f"{prefix}.count").inc()
    registry.histogram(f"{prefix}.seconds").observe(profile.time_total)
    registry.histogram(f"{prefix}.approx_seconds").observe(profile.time_approx)
    registry.histogram(f"{prefix}.candidates_seconds").observe(
        profile.time_candidates
    )
    registry.histogram(f"{prefix}.refine_seconds").observe(profile.time_refine)
    registry.histogram(f"{prefix}.eapca_pruning").observe(
        profile.eapca_pruning
    )
    if profile.sax_pruning is not None:
        registry.histogram(f"{prefix}.sax_pruning").observe(
            profile.sax_pruning
        )
    registry.counter(f"{prefix}.distance_computations").add(
        profile.distance_computations
    )
    registry.counter(f"{prefix}.series_accessed").add(profile.series_accessed)
    registry.counter(f"{prefix}.points_compared").add(profile.points_compared)
    registry.counter(f"{prefix}.points_total").add(profile.points_total)
    if profile.points_total:
        registry.histogram(f"{prefix}.abandoned_fraction").observe(
            profile.abandoned_fraction
        )
    registry.counter(f"{prefix}.cache.hits").add(profile.cache_hits)
    registry.counter(f"{prefix}.cache.misses").add(profile.cache_misses)
    if profile.cache_hit_rate is not None:
        registry.histogram(f"{prefix}.cache_hit_rate").observe(
            profile.cache_hit_rate
        )
    registry.counter(f"{prefix}.candidate_leaves").add(
        profile.candidate_leaves
    )
    registry.counter(f"{prefix}.candidate_series").add(
        profile.candidate_series
    )
    if num_series:
        registry.histogram(f"{prefix}.data_accessed_fraction").observe(
            profile.data_accessed_fraction(num_series)
        )
    if profile.path:
        registry.counter(f"{prefix}.path.{profile.path}").inc()
    if profile.io is not None:
        record_io(registry, profile.io, prefix=f"{prefix}.io")
        registry.histogram(f"{prefix}.modeled_io_seconds").observe(
            profile.modeled_io_seconds()
        )
