"""Metrics registry: counters, gauges, and summarizing histograms.

The hardware-independent cost metrics the reproduction reports next to
every timing (distance computations, series accessed, pruning ratios,
I/O operation counts) accumulate here instead of in per-harness ad-hoc
lists.  :class:`MetricsRegistry` hands out named instruments that are
individually thread-safe; :func:`record_profile` and :func:`record_io`
bridge the existing :class:`~repro.core.query.QueryProfile` and
:class:`~repro.storage.iostats.IOSnapshot` records into a registry so
every benchmark summary comes from one instrumented source.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Optional

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile_from_sorted",
    "record_build",
    "record_io",
    "record_profile",
]


def percentile_from_sorted(values, q: float) -> float:
    """The ``q``-th percentile of already-sorted ``values``.

    Pinned to linear interpolation between closest ranks — the same
    convention as ``numpy.percentile``'s default — but implemented
    explicitly so summaries are deterministic across numpy versions
    and platforms, and so callers holding a sorted array never pay a
    re-sort.  Accepts any indexable sorted sequence.
    """
    n = len(values)
    if n == 0:
        return 0.0
    position = (q / 100.0) * (n - 1)
    lower = int(position)
    upper = min(lower + 1, n - 1)
    fraction = position - lower
    return float(
        values[lower] * (1.0 - fraction) + values[upper] * fraction
    )

#: Every live registry, tracked so locks can be re-initialized in forked
#: children (a lock held by another thread at fork time would deadlock
#: the child forever; see :func:`_reinit_after_fork`).
_LIVE_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def _reinit_after_fork() -> None:
    """Replace every registry/instrument lock in a freshly forked child.

    The child is single-threaded at this point, so no lock can be
    legitimately held — any lock state inherited from the parent is
    stale.  Instruments keep their values: a shard build worker forked
    mid-benchmark still reports whatever the parent had accumulated plus
    its own work, and the parent-side merge (:meth:`MetricsRegistry.
    merge_state`) is responsible for not double-counting.
    """
    for registry in list(_LIVE_REGISTRIES):
        registry._lock = threading.Lock()
        for instrument in (
            list(registry._counters.values())
            + list(registry._gauges.values())
            + list(registry._histograms.values())
        ):
            instrument._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reinit_after_fork)


class Counter:
    """A monotonically increasing, thread-safe count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    add = inc

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe last-value-wins measurement."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A thread-safe value distribution with percentile summaries.

    Values are kept exactly (benchmark workloads observe at most a few
    thousand per histogram); :meth:`summary` reports count, mean, min,
    p50, p95, and max.  The sorted view is cached and invalidated on
    write, so a monitoring loop that reads summaries every few seconds
    does not re-sort an unchanged distribution — and percentiles use
    the pinned :func:`percentile_from_sorted` interpolation so the
    numbers are identical across platforms and numpy versions.
    """

    __slots__ = ("_lock", "_values", "_sorted")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: list[float] = []
        self._sorted: Optional[np.ndarray] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))
            self._sorted = None

    def extend(self, values) -> None:
        """Bulk-observe raw values (the child-process merge path)."""
        coerced = [float(v) for v in values]
        with self._lock:
            self._values.extend(coerced)
            if coerced:
                self._sorted = None

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def _sorted_snapshot(self) -> np.ndarray:
        with self._lock:
            if self._sorted is None:
                self._sorted = np.sort(
                    np.asarray(self._values, dtype=np.float64)
                )
            return self._sorted

    def summary(self) -> dict:
        values = self._sorted_snapshot()
        if values.shape[0] == 0:
            return {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0,
                    "p95": 0.0, "max": 0.0}
        return {
            "count": int(values.shape[0]),
            "mean": float(values.mean()),
            "min": float(values[0]),
            "p50": percentile_from_sorted(values, 50.0),
            "p95": percentile_from_sorted(values, 95.0),
            "max": float(values[-1]),
        }


class MetricsRegistry:
    """Named instruments, created on first use and safe to share.

    Registries are *fork-safe*: their locks (and every instrument's) are
    re-initialized in forked children, and a child's whole registry can
    be flushed across a process boundary as a plain dict
    (:meth:`export_state`) and folded into the parent's registry
    (:meth:`merge_state`) — counters add, gauges take the child's last
    value, histograms append the child's raw observations.  This is how
    shard build/query workers report `shard.*` metrics to the
    coordinator without ever sharing a lock across processes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._windowed_counters: dict = {}
        self._windowed_histograms: dict = {}
        _LIVE_REGISTRIES.add(self)

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def windowed_counter(self, name: str, **kwargs):
        """A named :class:`~repro.obs.telemetry.WindowedCounter`.

        Constructor keyword arguments (``window_seconds``,
        ``num_buckets``, ``clock``) only apply on first use; later
        calls return the existing instrument unchanged.
        """
        from repro.obs import telemetry

        with self._lock:
            instrument = self._windowed_counters.get(name)
            if instrument is None:
                instrument = self._windowed_counters[name] = (
                    telemetry.WindowedCounter(**kwargs)
                )
            return instrument

    def windowed_histogram(self, name: str, **kwargs):
        """A named :class:`~repro.obs.telemetry.WindowedHistogram`."""
        from repro.obs import telemetry

        with self._lock:
            instrument = self._windowed_histograms.get(name)
            if instrument is None:
                instrument = self._windowed_histograms[name] = (
                    telemetry.WindowedHistogram(**kwargs)
                )
            return instrument

    def summary(self) -> dict:
        """A JSON-friendly snapshot of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            windowed_counters = dict(self._windowed_counters)
            windowed_histograms = dict(self._windowed_histograms)
        return {
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.summary() for k, v in sorted(histograms.items())
            },
            "windowed_counters": {
                k: v.summary() for k, v in sorted(windowed_counters.items())
            },
            "windowed_histograms": {
                k: v.summary() for k, v in sorted(windowed_histograms.items())
            },
        }

    def to_openmetrics(self, slo=None) -> str:
        """This registry in OpenMetrics/Prometheus text format."""
        from repro.obs import exporter

        return exporter.render_openmetrics(self, slo=slo)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._windowed_counters.clear()
            self._windowed_histograms.clear()

    # -- cross-process flush --------------------------------------------------

    def export_state(self) -> dict:
        """A picklable snapshot of every instrument, raw values included.

        Unlike :meth:`summary`, histograms are exported as their full
        value lists so a parent-side merge preserves percentiles exactly.
        This is the payload a worker process sends home before exiting.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            windowed_counters = dict(self._windowed_counters)
            windowed_histograms = dict(self._windowed_histograms)
        return {
            "counters": {k: v.value for k, v in counters.items()},
            "gauges": {k: v.value for k, v in gauges.items()},
            "histograms": {k: v.values for k, v in histograms.items()},
            "windowed_counters": {
                k: v.export_state() for k, v in windowed_counters.items()
            },
            "windowed_histograms": {
                k: v.export_state() for k, v in windowed_histograms.items()
            },
        }

    def merge_state(self, state: dict, prefix: str = "") -> None:
        """Fold a child's :meth:`export_state` into this registry.

        Counters accumulate, gauges take the child's value, histogram
        observations append.  Windowed instruments merge bucket-by-
        bucket on the absolute epoch axis, so rolling percentiles come
        out identical no matter which process observed a value.
        ``prefix`` namespaces every merged name (e.g. ``shard.0.``) so
        per-worker provenance survives the merge — windowed instruments
        merge *unprefixed* as well, because a rolling `query.latency`
        must aggregate the whole fleet.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(f"{prefix}{name}").add(int(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(f"{prefix}{name}").set(value)
        for name, values in state.get("histograms", {}).items():
            self.histogram(f"{prefix}{name}").extend(values)
        for name, wstate in state.get("windowed_counters", {}).items():
            self.windowed_counter(
                name,
                window_seconds=wstate.get("window_seconds", 60.0),
                num_buckets=wstate.get("num_buckets", 12),
            ).merge_state(wstate)
        for name, wstate in state.get("windowed_histograms", {}).items():
            self.windowed_histogram(
                name,
                window_seconds=wstate.get("window_seconds", 60.0),
                num_buckets=wstate.get("num_buckets", 12),
            ).merge_state(wstate)


# ---------------------------------------------------------------------------
# Bridges from the existing measurement records
# ---------------------------------------------------------------------------


def record_io(registry: MetricsRegistry, snapshot, prefix: str = "io") -> None:
    """Accumulate an :class:`IOSnapshot` (usually a delta) into counters."""
    registry.counter(f"{prefix}.read_calls").add(snapshot.read_calls)
    registry.counter(f"{prefix}.write_calls").add(snapshot.write_calls)
    registry.counter(f"{prefix}.random_seeks").add(snapshot.random_seeks)
    registry.counter(f"{prefix}.sequential_reads").add(
        snapshot.sequential_reads
    )
    registry.counter(f"{prefix}.bytes_read").add(snapshot.bytes_read)
    registry.counter(f"{prefix}.bytes_written").add(snapshot.bytes_written)


def record_build(registry: MetricsRegistry, report, prefix: str = "build") -> None:
    """Feed one :class:`~repro.core.index.BuildReport` into the registry.

    Throughput and the per-phase wall-clock breakdown (Table 4's shape:
    routing, HBuffer stores, splits, flushes) land in gauges; the work
    counters accumulate so repeated builds in one process sum up.
    """
    registry.gauge(f"{prefix}.series_per_sec").set(report.series_per_sec)
    registry.gauge(f"{prefix}.build_seconds").set(report.build_seconds)
    registry.gauge(f"{prefix}.write_seconds").set(report.write_seconds)
    registry.gauge(f"{prefix}.route_seconds").set(report.route_seconds)
    registry.gauge(f"{prefix}.store_seconds").set(report.store_seconds)
    registry.gauge(f"{prefix}.split_seconds").set(report.split_seconds)
    registry.gauge(f"{prefix}.flush_seconds").set(report.flush_seconds)
    registry.counter(f"{prefix}.num_series").add(report.num_series)
    registry.counter(f"{prefix}.splits").add(report.splits)
    registry.counter(f"{prefix}.flushes").add(report.flushes)
    # Supervision counters exist only on ShardedBuildReport; a plain
    # BuildReport records nothing (no fake zero-series).
    for name in ("worker_restarts", "requeued_tasks", "task_retries"):
        value = getattr(report, name, 0)
        if value:
            registry.counter(f"{prefix}.{name}").add(int(value))
    if report.io is not None:
        record_io(registry, report.io, prefix=f"{prefix}.io")


def record_profile(
    registry: MetricsRegistry,
    profile,
    num_series: Optional[int] = None,
    prefix: str = "query",
) -> None:
    """Feed one :class:`QueryProfile` into the registry's instruments.

    Timings land in histograms (so summaries report p50/p95/max), work
    counters accumulate, and the per-path count makes access-path
    selection visible (``query.path.<name>``).
    """
    registry.counter(f"{prefix}.count").inc()
    registry.histogram(f"{prefix}.seconds").observe(profile.time_total)
    registry.histogram(f"{prefix}.approx_seconds").observe(profile.time_approx)
    registry.histogram(f"{prefix}.candidates_seconds").observe(
        profile.time_candidates
    )
    registry.histogram(f"{prefix}.refine_seconds").observe(profile.time_refine)
    registry.histogram(f"{prefix}.eapca_pruning").observe(
        profile.eapca_pruning
    )
    if profile.sax_pruning is not None:
        registry.histogram(f"{prefix}.sax_pruning").observe(
            profile.sax_pruning
        )
    registry.counter(f"{prefix}.distance_computations").add(
        profile.distance_computations
    )
    registry.counter(f"{prefix}.series_accessed").add(profile.series_accessed)
    registry.counter(f"{prefix}.points_compared").add(profile.points_compared)
    registry.counter(f"{prefix}.points_total").add(profile.points_total)
    if profile.points_total:
        registry.histogram(f"{prefix}.abandoned_fraction").observe(
            profile.abandoned_fraction
        )
    registry.counter(f"{prefix}.cache.hits").add(profile.cache_hits)
    registry.counter(f"{prefix}.cache.misses").add(profile.cache_misses)
    if profile.cache_hit_rate is not None:
        registry.histogram(f"{prefix}.cache_hit_rate").observe(
            profile.cache_hit_rate
        )
    registry.counter(f"{prefix}.candidate_leaves").add(
        profile.candidate_leaves
    )
    registry.counter(f"{prefix}.candidate_series").add(
        profile.candidate_series
    )
    if profile.prefilter_screened:
        registry.counter(f"{prefix}.prefilter.screened").add(
            profile.prefilter_screened
        )
        registry.counter(f"{prefix}.prefilter.survivors").add(
            profile.prefilter_survivors
        )
        registry.histogram(f"{prefix}.prefilter.pruned_fraction").observe(
            profile.prefilter_pruned_fraction
        )
    if num_series:
        registry.histogram(f"{prefix}.data_accessed_fraction").observe(
            profile.data_accessed_fraction(num_series)
        )
    if profile.path:
        registry.counter(f"{prefix}.path.{profile.path}").inc()
    if profile.io is not None:
        record_io(registry, profile.io, prefix=f"{prefix}.io")
        registry.histogram(f"{prefix}.modeled_io_seconds").observe(
            profile.modeled_io_seconds()
        )


def record_batch_stats(
    registry: MetricsRegistry, stats, prefix: str = "query.batch"
) -> None:
    """Feed one batch execution's :class:`BatchStats` into the registry.

    Duck-typed (any object with the
    :class:`~repro.core.batch_query.BatchStats` fields works — obs never
    imports core).  Counters accumulate raw work so batches sum across a
    workload; the derived sharing ratios land in histograms, one
    observation per batch.
    """
    registry.counter(f"{prefix}.count").inc()
    registry.counter(f"{prefix}.queries").add(stats.num_queries)
    registry.counter(f"{prefix}.unique_leaf_reads").add(
        stats.unique_leaf_reads
    )
    registry.counter(f"{prefix}.leaf_uses").add(stats.leaf_uses)
    registry.counter(f"{prefix}.kernel_rows").add(stats.kernel_rows)
    registry.histogram(f"{prefix}.seconds").observe(stats.total_seconds)
    if stats.unique_leaf_reads:
        registry.histogram(f"{prefix}.leaf_share_factor").observe(
            stats.leaf_share_factor
        )
        registry.histogram(f"{prefix}.kernel_rows_per_read").observe(
            stats.kernel_rows_per_read
        )
    if stats.screen_seconds:
        registry.histogram(f"{prefix}.screen_seconds_per_query").observe(
            stats.screen_seconds_per_query
        )
