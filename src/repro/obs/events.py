"""Structured event journal: typed operational events in a bounded ring.

Metrics answer "how much / how fast"; events answer "what happened".
The supervision, degradation, and cache-pressure paths emit typed
events into a :class:`EventJournal` — a bounded, thread-safe ring
buffer whose records carry a wall-clock timestamp, a monotone sequence
number, the emitting pid, and (when tracing is active) the current
trace name and span id so an operator can jump from an event to the
exact span that produced it.

The journal is picklable across process boundaries
(:meth:`EventJournal.export_state` / :meth:`~EventJournal.merge_state`)
the same way the metrics registry is, and a :class:`TelemetrySink`
drains it incrementally into an append-only JSONL spool file.
"""

from __future__ import annotations

import collections
import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.obs import tracing

__all__ = ["EVENT_TYPES", "Event", "EventJournal"]

#: The typed vocabulary.  Emitting an unknown type raises — events are
#: an operator contract, not a freeform log; extend the tuple when a
#: new failure/progress mode is instrumented.
EVENT_TYPES = (
    "build_phase",
    "cache_eviction_pressure",
    "query_degraded",
    "shard_dropped",
    "stall_watchdog",
    "worker_restart",
)

DEFAULT_CAPACITY = 1024

_LIVE_JOURNALS: "weakref.WeakSet[EventJournal]" = weakref.WeakSet()


def _reinit_after_fork() -> None:
    for journal in list(_LIVE_JOURNALS):
        journal._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_reinit_after_fork)


@dataclass(frozen=True)
class Event:
    """One journal record."""

    seq: int
    ts: float
    type: str
    pid: int
    attrs: dict = field(default_factory=dict)
    trace: Optional[str] = None
    span_id: Optional[int] = None

    def to_dict(self) -> dict:
        record = {
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "pid": self.pid,
            "attrs": self.attrs,
        }
        if self.trace is not None:
            record["trace"] = self.trace
        if self.span_id is not None:
            record["span_id"] = self.span_id
        return record


class EventJournal:
    """A bounded, thread-safe ring of :class:`Event` records.

    Sequence numbers are assigned under the journal lock, so they give
    a total emission order even when many threads emit concurrently;
    the ring (``capacity`` newest records) drops the oldest first.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._events: "collections.deque[Event]" = collections.deque(
            maxlen=self.capacity
        )
        self._next_seq = 0
        _LIVE_JOURNALS.add(self)

    def emit(self, etype: str, **attrs) -> Event:
        if etype not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {etype!r}; known: {EVENT_TYPES}"
            )
        trace = tracing.get_trace()
        span = tracing.current_span()
        event_ts = attrs.pop("_ts", None)
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            event = Event(
                seq=seq,
                ts=float(event_ts) if event_ts is not None else self._clock(),
                type=etype,
                pid=os.getpid(),
                attrs=attrs,
                trace=trace.name if trace is not None else None,
                span_id=getattr(span, "span_id", None),
            )
            self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def total_emitted(self) -> int:
        with self._lock:
            return self._next_seq

    def events(self) -> "list[Event]":
        with self._lock:
            return list(self._events)

    def tail(self, n: int) -> "list[Event]":
        with self._lock:
            if n <= 0:
                return []
            return list(self._events)[-n:]

    def drain_since(self, seq: int) -> "list[Event]":
        """Every retained event with a sequence number > ``seq``.

        The incremental-sink protocol: the sink remembers the last seq
        it wrote and asks only for what is new.  Records that fell off
        the ring before being drained are lost (by design — the ring
        bounds memory, the JSONL spool is the durable copy as long as
        the sink keeps up).
        """
        with self._lock:
            return [e for e in self._events if e.seq > seq]

    # -- cross-process flush ------------------------------------------------

    def export_state(self) -> "list[dict]":
        """Picklable snapshot of the retained records, oldest first."""
        return [e.to_dict() for e in self.events()]

    def merge_state(self, records: Iterable[dict], **extra_attrs) -> None:
        """Fold a child journal's export into this one.

        Each record keeps its original timestamp, type, pid, attributes
        and trace/span correlation but gets a fresh local sequence
        number (assigned in record order at merge time).  ``extra_attrs``
        annotate provenance, e.g. ``shard=3``.
        """
        for record in records:
            attrs = dict(record.get("attrs", {}))
            attrs.update(extra_attrs)
            with self._lock:
                seq = self._next_seq
                self._next_seq += 1
                self._events.append(Event(
                    seq=seq,
                    ts=float(record.get("ts", 0.0)),
                    type=record.get("type", "build_phase"),
                    pid=int(record.get("pid", 0)),
                    attrs=attrs,
                    trace=record.get("trace"),
                    span_id=record.get("span_id"),
                ))
