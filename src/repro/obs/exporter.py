"""OpenMetrics export and the telemetry spool sink.

Two output surfaces for one registry:

* :func:`render_openmetrics` — the Prometheus/OpenMetrics text format
  (``# TYPE`` headers, ``_total``-suffixed counters, summary quantiles,
  ``# EOF`` terminator), scrapeable by promtool/Grafana Agent.
  :func:`parse_openmetrics` is the strict validator CI and the tests
  run over the output.
* :class:`TelemetrySink` — a periodic flusher writing a *spool
  directory*: ``metrics.prom`` and ``metrics.json`` replaced atomically
  (stage + fsync + ``os.replace``, the PR-2 publish idiom), plus
  append-only ``events.jsonl`` (incremental journal drain) and
  ``resources.jsonl`` (one sampler reading per flush, the monitor's
  sparkline history).

The sink is what ``--telemetry-dir`` turns on and what
``repro monitor`` tails.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Callable, Optional

__all__ = [
    "TelemetrySink",
    "parse_openmetrics",
    "render_openmetrics",
    "sanitize_metric_name",
]

#: Spool file names (one directory per run).
METRICS_PROM = "metrics.prom"
METRICS_JSON = "metrics.json"
EVENTS_JSONL = "events.jsonl"
RESOURCES_JSONL = "resources.jsonl"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
    r"(?: [0-9]+(?:\.[0-9]+)?)?$"
)
_TYPES = ("counter", "gauge", "summary")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted repro metric name onto the OpenMetrics charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Renderer:
    def __init__(self) -> None:
        self.lines: list = []
        self._seen: set = set()

    def family(self, name: str, mtype: str) -> Optional[str]:
        name = sanitize_metric_name(name)
        if name in self._seen:
            return None  # sanitization collision: first family wins
        self._seen.add(name)
        self.lines.append(f"# TYPE {name} {mtype}")
        return name

    def counter(self, name: str, value) -> None:
        name = self.family(name, "counter")
        if name is not None:
            self.lines.append(f"{name}_total {_fmt(value)}")

    def gauge(self, name: str, value) -> None:
        name = self.family(name, "gauge")
        if name is not None:
            self.lines.append(f"{name} {_fmt(value)}")

    def summary(self, name: str, quantiles: dict, count, total) -> None:
        name = self.family(name, "summary")
        if name is None:
            return
        for q, value in quantiles.items():
            self.lines.append(
                f'{name}{{quantile="{q}"}} {_fmt(value)}'
            )
        self.lines.append(f"{name}_sum {_fmt(total)}")
        self.lines.append(f"{name}_count {_fmt(count)}")

    def render(self) -> str:
        return "\n".join(self.lines + ["# EOF"]) + "\n"


def render_openmetrics(registry, slo=None,
                       now: Optional[float] = None) -> str:
    """The registry (and optionally an SLO status) as OpenMetrics text."""
    summary = registry.summary()
    out = _Renderer()
    for name, value in summary.get("counters", {}).items():
        out.counter(name, value)
    for name, value in summary.get("gauges", {}).items():
        out.gauge(name, value)
    for name, hist in summary.get("histograms", {}).items():
        out.summary(
            name,
            {"0.5": hist["p50"], "0.95": hist["p95"]},
            hist["count"],
            hist["mean"] * hist["count"],
        )
    for name, win in summary.get("windowed_counters", {}).items():
        out.counter(name, win["total"])
        out.gauge(f"{name}.rate", win["rate"])
    for name, win in summary.get("windowed_histograms", {}).items():
        out.summary(
            name,
            {"0.5": win["p50"], "0.95": win["p95"], "0.99": win["p99"]},
            win["count"],
            win["mean"] * win["count"],
        )
        out.gauge(f"{name}.rate", win["rate"])
    if slo is not None:
        status = slo.status(now) if hasattr(slo, "status") else dict(slo)
        for key in ("latency_attainment", "latency_burn",
                    "coverage_attainment", "coverage_burn", "healthy"):
            out.gauge(f"slo.{key}", status[key])
    return out.render()


def parse_openmetrics(text: str) -> dict:
    """Validate OpenMetrics text; returns ``{family: type}``.

    Checks the invariants promtool enforces that matter for scraping:
    every family declared before its samples, counter samples carry the
    ``_total`` suffix, sample lines match the exposition grammar, names
    stay in the legal charset, exactly one terminating ``# EOF``.
    Raises ``ValueError`` with the offending line on violation.
    """
    families: dict = {}
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("missing terminating '# EOF' line")
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ValueError(f"line {lineno}: blank line before EOF")
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 4 and parts[1] == "TYPE":
                name, mtype = parts[2], parts[3]
                if not _NAME_OK.match(name):
                    raise ValueError(f"line {lineno}: bad family name {name!r}")
                if mtype not in _TYPES:
                    raise ValueError(f"line {lineno}: bad type {mtype!r}")
                if name in families:
                    raise ValueError(f"line {lineno}: duplicate family {name!r}")
                families[name] = mtype
            elif parts[1] in ("HELP", "UNIT"):
                continue
            elif line == "# EOF":
                raise ValueError(f"line {lineno}: '# EOF' before end of text")
            else:
                raise ValueError(f"line {lineno}: unparseable comment {line!r}")
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        sample_name = match.group("name")
        for family, mtype in families.items():
            if sample_name == family or (
                sample_name.startswith(family)
                and sample_name[len(family):] in ("_total", "_sum",
                                                  "_count", "_created")
            ):
                if mtype == "counter" and sample_name != f"{family}_total":
                    if sample_name == family:
                        raise ValueError(
                            f"line {lineno}: counter sample {sample_name!r} "
                            "missing '_total' suffix"
                        )
                break
        else:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no preceding "
                "# TYPE declaration"
            )
    return families


# ---------------------------------------------------------------------------
# Atomic spool writes (the PR-2 publish idiom, kept local so repro.obs
# stays import-independent from repro.storage)
# ---------------------------------------------------------------------------


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. windows dirs
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_text_atomic(path: Path, text: str) -> None:
    """Stage + fsync + ``os.replace`` so readers never see a torn file."""
    path = Path(path)
    staged = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    with open(staged, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(staged, path)
    _fsync_dir(path.parent)


class TelemetrySink:
    """Periodically flush telemetry into a spool directory.

    One ``flush()`` writes a consistent set: the OpenMetrics text and
    JSON snapshot are atomically replaced, new journal events are
    appended to ``events.jsonl``, and (when a sampler is attached) one
    resource reading per watched process is appended to
    ``resources.jsonl``.  ``start()``/``stop()`` run the flush loop on
    a daemon thread; ``close()`` stops it and flushes a final time so
    short CLI runs still leave a complete spool behind.
    """

    def __init__(
        self,
        directory,
        registry,
        journal=None,
        slo=None,
        sampler=None,
        interval: float = 2.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.registry = registry
        self.journal = journal
        self.slo = slo
        self.sampler = sampler
        self.interval = float(interval)
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._last_event_seq = -1
        self._flushes = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _append_jsonl(self, filename: str, records) -> None:
        if not records:
            return
        with open(self.directory / filename, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    def flush(self) -> None:
        with self._lock:
            now = self._clock()
            self._flushes += 1
            if self.sampler is not None:
                readings = self.sampler.sample_once()
                if readings:
                    self._append_jsonl(
                        RESOURCES_JSONL,
                        [{"ts": now, "samples": readings}],
                    )
            if self.journal is not None:
                fresh = self.journal.drain_since(self._last_event_seq)
                if fresh:
                    self._last_event_seq = fresh[-1].seq
                    self._append_jsonl(
                        EVENTS_JSONL, [e.to_dict() for e in fresh]
                    )
            text = render_openmetrics(self.registry, slo=self.slo, now=now)
            write_text_atomic(self.directory / METRICS_PROM, text)
            snapshot = {
                "ts": now,
                "pid": os.getpid(),
                "flushes": self._flushes,
                "interval": self.interval,
                "summary": self.registry.summary(),
            }
            if self.slo is not None:
                snapshot["slo"] = self.slo.status(now)
            write_text_atomic(
                self.directory / METRICS_JSON,
                json.dumps(snapshot, sort_keys=True, default=float),
            )

    # -- background loop ----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-sink", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def close(self) -> None:
        """Stop the loop and flush once more (the shutdown path)."""
        self.stop()
        self.flush()

    def __enter__(self) -> "TelemetrySink":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.flush()
            except Exception:  # pragma: no cover - never kill the host
                pass
            self._stop.wait(self.interval)
