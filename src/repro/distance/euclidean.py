"""Exact Euclidean distance kernels.

Two optimizations from the UCR suite carry over to whole matching and are
used throughout (Section 2, "The UCR Suite"):

* **squared distances** — comparisons happen on squared values and the
  square root is taken once at the end;
* **early abandoning** — a running sum that exceeds the best-so-far bound
  stops the accumulation.

The batch kernels are the SIMD analog: they evaluate a whole candidate
matrix at once.  ``early_abandon_squared`` implements early abandoning in
*column blocks* so it stays vectorized: after each block of points the rows
whose partial sum already exceeds the cutoff are dropped from the rest of
the computation.  The number of point comparisons actually performed is
returned so harnesses can report work done, not just wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.types import DISTANCE_DTYPE

#: Column-block width used by the blocked early-abandoning kernel.
DEFAULT_ABANDON_BLOCK = 32


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two 1-D series."""
    x = np.asarray(a, dtype=DISTANCE_DTYPE)
    y = np.asarray(b, dtype=DISTANCE_DTYPE)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    diff = x - y
    return float(np.dot(diff, diff))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two 1-D series."""
    return float(np.sqrt(squared_euclidean(a, b)))


def batch_squared_euclidean(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Squared ED between one query and every row of ``candidates``.

    Returns a float64 vector of length ``candidates.shape[0]``.
    """
    q = np.asarray(query, dtype=DISTANCE_DTYPE)
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    if cands.ndim == 1:
        cands = cands.reshape(1, -1)
    if q.ndim != 1 or cands.shape[1] != q.shape[0]:
        raise ValueError(
            f"query shape {q.shape} incompatible with candidates {cands.shape}"
        )
    diff = cands - q
    return np.einsum("ij,ij->i", diff, diff)


def early_abandon_squared(
    query: np.ndarray,
    candidates: np.ndarray,
    cutoff_squared: float,
    block: int = DEFAULT_ABANDON_BLOCK,
) -> tuple[np.ndarray, int]:
    """Blocked early-abandoning squared ED.

    Accumulates squared differences ``block`` columns at a time and removes
    rows whose partial sum already exceeds ``cutoff_squared``.  Abandoned
    rows report ``inf``; surviving rows carry exactly the value
    :func:`batch_squared_euclidean` would compute for them, so callers can
    mix the two kernels without rounding drift.

    Returns
    -------
    (distances, points_compared):
        ``distances`` is float64 of length ``count`` with ``inf`` for
        abandoned candidates; ``points_compared`` counts the individual
        point comparisons performed (the early-abandoning savings metric).
    """
    q = np.asarray(query, dtype=DISTANCE_DTYPE)
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    if cands.ndim == 1:
        cands = cands.reshape(1, -1)
    count, n = cands.shape
    if q.shape != (n,):
        raise ValueError(
            f"query shape {q.shape} incompatible with candidates {cands.shape}"
        )
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    if count == 0:
        return np.empty(0, dtype=DISTANCE_DTYPE), 0
    if not cutoff_squared < np.inf:
        # Nothing can be abandoned (this also covers a NaN cutoff): one
        # full evaluation, identical to the plain batch kernel.
        return batch_squared_euclidean(q, cands), count * n

    partial = np.zeros(count, dtype=DISTANCE_DTYPE)
    alive = np.arange(count)
    points_compared = 0
    for start in range(0, n, block):
        end = min(start + block, n)
        diff = cands[alive, start:end] - q[start:end]
        partial[alive] += np.einsum("ij,ij->i", diff, diff)
        points_compared += alive.shape[0] * (end - start)
        keep = partial[alive] <= cutoff_squared
        if not keep.all():
            alive = alive[keep]
            if alive.shape[0] == 0:
                break

    distances = np.full(count, np.inf, dtype=DISTANCE_DTYPE)
    if alive.shape[0]:
        # Survivors are re-evaluated in one whole-row pass so their values
        # agree bit-for-bit with ``batch_squared_euclidean`` (blocked
        # partial sums round differently); abandoning decided who pays
        # full price, the row kernel decides the exact value.
        diff = cands[alive] - q
        distances[alive] = np.einsum("ij,ij->i", diff, diff)
    return distances, points_compared


def knn_from_distances(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` smallest distances, sorted ascending.

    Fewer than ``k`` entries are returned when ``distances`` is shorter.
    """
    dist = np.asarray(distances, dtype=DISTANCE_DTYPE)
    if dist.ndim != 1:
        raise ValueError("expected a 1-D distance vector")
    k = min(k, dist.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=DISTANCE_DTYPE)
    part = np.argpartition(dist, k - 1)[:k]
    order = np.argsort(dist[part], kind="stable")
    idx = part[order]
    return idx.astype(np.int64), dist[idx]
