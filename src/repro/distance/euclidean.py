"""Exact Euclidean distance kernels.

Two optimizations from the UCR suite carry over to whole matching and are
used throughout (Section 2, "The UCR Suite"):

* **squared distances** — comparisons happen on squared values and the
  square root is taken once at the end;
* **early abandoning** — a running sum that exceeds the best-so-far bound
  stops the accumulation.

The batch kernels are the SIMD analog: they evaluate a whole candidate
matrix at once.  ``early_abandon_squared`` implements early abandoning in
*column blocks* so it stays vectorized: after each block of points the rows
whose partial sum already exceeds the cutoff are dropped from the rest of
the computation.  The number of point comparisons actually performed is
returned so harnesses can report work done, not just wall-clock.
"""

from __future__ import annotations

import numpy as np

from repro.types import DISTANCE_DTYPE

#: Column-block width used by the blocked early-abandoning kernel.
DEFAULT_ABANDON_BLOCK = 32


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two 1-D series."""
    x = np.asarray(a, dtype=DISTANCE_DTYPE)
    y = np.asarray(b, dtype=DISTANCE_DTYPE)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    diff = x - y
    return float(np.dot(diff, diff))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two 1-D series."""
    return float(np.sqrt(squared_euclidean(a, b)))


def batch_squared_euclidean(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Squared ED between one query and every row of ``candidates``.

    Returns a float64 vector of length ``candidates.shape[0]``.
    """
    q = np.asarray(query, dtype=DISTANCE_DTYPE)
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    if cands.ndim == 1:
        cands = cands.reshape(1, -1)
    if q.ndim != 1 or cands.shape[1] != q.shape[0]:
        raise ValueError(
            f"query shape {q.shape} incompatible with candidates {cands.shape}"
        )
    diff = cands - q
    return np.einsum("ij,ij->i", diff, diff)


def early_abandon_squared(
    query: np.ndarray,
    candidates: np.ndarray,
    cutoff_squared: float,
    block: int = DEFAULT_ABANDON_BLOCK,
) -> tuple[np.ndarray, int]:
    """Blocked early-abandoning squared ED.

    Accumulates squared differences ``block`` columns at a time and removes
    rows whose partial sum already exceeds ``cutoff_squared``.  Abandoned
    rows report ``inf``; surviving rows carry exactly the value
    :func:`batch_squared_euclidean` would compute for them, so callers can
    mix the two kernels without rounding drift.

    Returns
    -------
    (distances, points_compared):
        ``distances`` is float64 of length ``count`` with ``inf`` for
        abandoned candidates; ``points_compared`` counts the individual
        point comparisons performed (the early-abandoning savings metric).
    """
    q = np.asarray(query, dtype=DISTANCE_DTYPE)
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    if cands.ndim == 1:
        cands = cands.reshape(1, -1)
    count, n = cands.shape
    if q.shape != (n,):
        raise ValueError(
            f"query shape {q.shape} incompatible with candidates {cands.shape}"
        )
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    if count == 0:
        return np.empty(0, dtype=DISTANCE_DTYPE), 0
    if not cutoff_squared < np.inf:
        # Nothing can be abandoned (this also covers a NaN cutoff): one
        # full evaluation, identical to the plain batch kernel.
        return batch_squared_euclidean(q, cands), count * n

    partial = np.zeros(count, dtype=DISTANCE_DTYPE)
    alive = np.arange(count)
    points_compared = 0
    for start in range(0, n, block):
        end = min(start + block, n)
        diff = cands[alive, start:end] - q[start:end]
        partial[alive] += np.einsum("ij,ij->i", diff, diff)
        points_compared += alive.shape[0] * (end - start)
        keep = partial[alive] <= cutoff_squared
        if not keep.all():
            alive = alive[keep]
            if alive.shape[0] == 0:
                break

    distances = np.full(count, np.inf, dtype=DISTANCE_DTYPE)
    if alive.shape[0]:
        # Survivors are re-evaluated in one whole-row pass so their values
        # agree bit-for-bit with ``batch_squared_euclidean`` (blocked
        # partial sums round differently); abandoning decided who pays
        # full price, the row kernel decides the exact value.
        diff = cands[alive] - q
        distances[alive] = np.einsum("ij,ij->i", diff, diff)
    return distances, points_compared


def early_abandon_squared_multi(
    queries: np.ndarray,
    candidates: np.ndarray,
    cutoffs_squared: np.ndarray,
    block: int = DEFAULT_ABANDON_BLOCK,
    row_masks: np.ndarray = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Matrix-screened squared ED for a whole query block.

    The multi-query analog of :func:`early_abandon_squared`: one pass
    over the candidate matrix serves every query, so each candidate row
    is loaded once and shared across the query dimension.  Instead of
    per-point abandoning (a Python-level block loop per query), the
    whole (num_queries x count) distance matrix is *screened* with one
    BLAS matmul via ``|q|² + |c|² - 2 q·c``, and only the pairs whose
    screened value beats that query's cutoff (plus a rounding-slack
    margin, so the matmul's float error can never drop a true survivor)
    are re-evaluated whole-row — the identical summation order the
    single-query kernel uses, so every reported value is bit-for-bit
    the one :func:`early_abandon_squared` would report.  Each query
    carries its own cutoff; ``row_masks`` (shape
    ``(num_queries, count)``; False rows are never evaluated for that
    query and report ``inf``) optionally restricts the candidate set up
    front.  ``block`` is accepted for signature compatibility with the
    single-query kernel and ignored — the matmul screen touches every
    point once instead of abandoning column blocks.

    Returns
    -------
    (distances, points_compared):
        ``distances`` is float64 of shape ``(num_queries, count)`` with
        ``inf`` for screened-out or masked-out (query, candidate)
        pairs; ``points_compared`` is an int64 vector of per-query
        point comparison counts (every masked-in point — the matmul
        screen has no abandoning savings to report).
    """
    qs = np.asarray(queries, dtype=DISTANCE_DTYPE)
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    if cands.ndim == 1:
        cands = cands.reshape(1, -1)
    if qs.ndim != 2 or cands.shape[1] != qs.shape[1]:
        raise ValueError(
            f"queries shape {qs.shape} incompatible with candidates {cands.shape}"
        )
    cutoffs = np.asarray(cutoffs_squared, dtype=DISTANCE_DTYPE)
    num_queries = qs.shape[0]
    count, n = cands.shape
    if cutoffs.shape != (num_queries,):
        raise ValueError(
            f"expected {num_queries} cutoffs, got shape {cutoffs.shape}"
        )
    if row_masks is not None and row_masks.shape != (num_queries, count):
        raise ValueError(
            f"row_masks shape {row_masks.shape} incompatible with "
            f"({num_queries}, {count})"
        )
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    distances = np.full((num_queries, count), np.inf, dtype=DISTANCE_DTYPE)
    points_compared = np.zeros(num_queries, dtype=np.int64)
    if count == 0 or num_queries == 0:
        return distances, points_compared

    # A NaN cutoff means "nothing can be screened out", matching the
    # single-query kernel's non-finite-cutoff path.
    cutoffs = np.where(np.isnan(cutoffs), np.inf, cutoffs)
    qs_norms = np.einsum("ij,ij->i", qs, qs)
    cand_norms = np.einsum("ij,ij->i", cands, cands)
    # One matmul screens every (query, candidate) pair.  The screen is
    # only a gate — a pair may pass with a slightly-off value, never
    # the reported one.  The slack keeps the gate conservative: the
    # matmul form's rounding error is bounded orders of magnitude below
    # 1e-7 of the operand norms at any realistic series length, so a
    # pair whose true distance beats the cutoff always passes.
    screened = qs_norms[:, None] + cand_norms[None, :] - 2.0 * (qs @ cands.T)
    slack = 1e-7 * (qs_norms[:, None] + cand_norms[None, :]) + 1e-12
    keep = screened <= cutoffs[:, None] + slack
    if row_masks is not None:
        keep &= row_masks
        points_compared[:] = row_masks.sum(axis=1) * n
    else:
        points_compared[:] = count * n
    for qi in range(num_queries):
        rows = np.nonzero(keep[qi])[0]
        if rows.shape[0]:
            # Same whole-row re-evaluation as the single-query kernel:
            # the screen decided who pays full price, the row kernel
            # decides the exact value.
            diff = cands[rows] - qs[qi]
            distances[qi, rows] = np.einsum("ij,ij->i", diff, diff)
    return distances, points_compared


def knn_from_distances(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` smallest distances, sorted ascending.

    Fewer than ``k`` entries are returned when ``distances`` is shorter.
    """
    dist = np.asarray(distances, dtype=DISTANCE_DTYPE)
    if dist.ndim != 1:
        raise ValueError("expected a 1-D distance vector")
    k = min(k, dist.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=DISTANCE_DTYPE)
    part = np.argpartition(dist, k - 1)[:k]
    order = np.argsort(dist[part], kind="stable")
    idx = part[order]
    return idx.astype(np.int64), dist[idx]
