"""Distance kernels and lower bounds.

The paper performs every distance calculation with SIMD (Section 3.4); the
Python analog is batch NumPy kernels over whole candidate matrices, which
keeps pruning behaviour and operation counts identical while replacing the
scalar inner loops.

* :mod:`repro.distance.euclidean` — exact (squared) Euclidean distance,
  batch kernels, early abandoning, k-NN selection helpers.
* :mod:`repro.distance.lower_bounds` — LB_EAPCA (DSTree node bound),
  LB_SAX (iSAX MINDIST wrapper), LB_PAA, and VA+ cell bounds.
"""

from repro.distance.euclidean import (
    euclidean,
    squared_euclidean,
    batch_squared_euclidean,
    early_abandon_squared,
    knn_from_distances,
)
from repro.distance.lower_bounds import (
    lb_eapca,
    lb_eapca_batch,
    lb_paa,
    series_synopsis,
    va_cell_bounds,
)
from repro.distance.dtw import (
    dtw_distance,
    dtw_distance_batch,
    dtw_envelope,
    lb_keogh,
)

__all__ = [
    "euclidean",
    "squared_euclidean",
    "batch_squared_euclidean",
    "early_abandon_squared",
    "knn_from_distances",
    "lb_eapca",
    "lb_eapca_batch",
    "lb_paa",
    "series_synopsis",
    "va_cell_bounds",
    "dtw_distance",
    "dtw_distance_batch",
    "dtw_envelope",
    "lb_keogh",
]
