"""Dynamic Time Warping with lower bounds (UCR-suite style).

The paper's methods target Euclidean distance but "can support any
distance measure equipped with a lower-bounding distance, e.g. Dynamic
Time Warping" (Section 2, citing Keogh & Ratanamahatana's exact DTW
indexing).  This module supplies that substrate:

* :func:`dtw_distance` / :func:`dtw_distance_batch` — exact constrained
  DTW under a Sakoe-Chiba band, computed as the square root of the
  banded squared-cost DP.  The batch variant runs the DP across many
  candidates at once (one vectorized step per DP cell *column*, not per
  candidate), and early-abandons candidates whose running row minimum
  exceeds the cutoff — the vectorized analog of the UCR suite's
  abandoning.
* :func:`dtw_envelope` — the Keogh upper/lower envelope of a query under
  a warping window.
* :func:`lb_keogh` — the LB_Keogh lower bound of DTW from the envelope,
  batched over candidates.

Conventions: the band ``window`` is in points (|i - j| <= window); both
series must share one length (whole matching, as everywhere else in this
reproduction).
"""

from __future__ import annotations

import numpy as np

from repro.types import DISTANCE_DTYPE


def resolve_window(length: int, window: int | float | None) -> int:
    """Normalize a warping-window spec to points.

    ``None`` → 10% of the length (the UCR suite's common default);
    a float in (0, 1] → that fraction of the length; an int → points.
    """
    if window is None:
        window = 0.1
    if isinstance(window, float):
        if not 0.0 <= window <= 1.0:
            raise ValueError(f"fractional window must be in [0, 1], got {window}")
        return max(int(round(window * length)), 0)
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    return int(window)


def dtw_envelope(
    series: np.ndarray, window: int | float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Keogh envelope: running min/max of ``series`` over ±window.

    Returns ``(lower, upper)`` with ``lower[t] = min(series[t-w : t+w+1])``
    and symmetrically for ``upper``.
    """
    arr = np.asarray(series, dtype=DISTANCE_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got ndim={arr.ndim}")
    n = arr.shape[0]
    w = resolve_window(n, window)
    if w == 0:
        return arr.copy(), arr.copy()
    padded = np.pad(arr, w, mode="edge")
    view = np.lib.stride_tricks.sliding_window_view(padded, 2 * w + 1)
    return view.min(axis=1), view.max(axis=1)


def lb_keogh(
    lower: np.ndarray,
    upper: np.ndarray,
    candidates: np.ndarray,
) -> np.ndarray:
    """LB_Keogh: lower bound of DTW(query, candidate) from the envelope.

    ``lower``/``upper`` are the query's envelope; ``candidates`` is one
    series or a batch.  Valid for any window at least as wide as the one
    the envelope was built with.
    """
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    squeeze = cands.ndim == 1
    if squeeze:
        cands = cands.reshape(1, -1)
    if cands.shape[1] != lower.shape[0]:
        raise ValueError(
            f"candidate length {cands.shape[1]} does not match envelope "
            f"length {lower.shape[0]}"
        )
    above = np.maximum(cands - upper, 0.0)
    below = np.maximum(lower - cands, 0.0)
    gap = above + below  # at most one of the two is nonzero per point
    out = np.sqrt(np.einsum("ij,ij->i", gap, gap))
    return float(out[0]) if squeeze else out


def dtw_distance(
    a: np.ndarray, b: np.ndarray, window: int | float | None = None
) -> float:
    """Exact DTW distance between two series under a Sakoe-Chiba band."""
    result = dtw_distance_batch(a, np.asarray(b).reshape(1, -1), window)
    return float(result[0])


def dtw_distance_batch(
    query: np.ndarray,
    candidates: np.ndarray,
    window: int | float | None = None,
    cutoff: float = np.inf,
) -> np.ndarray:
    """DTW between one query and many candidates, batched and banded.

    The DP runs row by row over the query; within a row the column
    recurrence is sequential, but every step is vectorized across the
    whole candidate batch, so the Python-level work is O(n · band) steps
    regardless of batch size.  Candidates whose running row minimum
    exceeds ``cutoff`` are abandoned (reported as ``inf``) — sound
    because DP cell values along any warping path are non-decreasing.
    """
    q = np.asarray(query, dtype=DISTANCE_DTYPE)
    cands = np.asarray(candidates, dtype=DISTANCE_DTYPE)
    if cands.ndim == 1:
        cands = cands.reshape(1, -1)
    n = q.shape[0]
    if cands.shape[1] != n:
        raise ValueError(
            f"candidate length {cands.shape[1]} does not match query {n}"
        )
    w = resolve_window(n, window)
    count = cands.shape[0]
    cutoff_sq = cutoff * cutoff if np.isfinite(cutoff) else np.inf

    inf = np.inf
    prev = np.full((count, n), inf, dtype=DISTANCE_DTYPE)
    cur = np.full((count, n), inf, dtype=DISTANCE_DTYPE)
    alive = np.arange(count)
    final = np.full(count, inf, dtype=DISTANCE_DTYPE)

    for i in range(n):
        lo = max(0, i - w)
        hi = min(n - 1, i + w)
        cur[alive, : max(lo, 0)] = inf
        diffs = cands[alive, lo : hi + 1] - q[i]
        costs = diffs * diffs
        row_min = np.full(alive.shape[0], inf, dtype=DISTANCE_DTYPE)
        for j in range(lo, hi + 1):
            if i == 0 and j == 0:
                best = np.zeros(alive.shape[0], dtype=DISTANCE_DTYPE)
            else:
                best = prev[alive, j] if i > 0 else np.full(
                    alive.shape[0], inf, dtype=DISTANCE_DTYPE
                )
                if j > 0:
                    if i > 0:
                        best = np.minimum(best, prev[alive, j - 1])
                    best = np.minimum(best, cur[alive, j - 1])
            value = costs[:, j - lo] + best
            cur[alive, j] = value
            np.minimum(row_min, value, out=row_min)
        if hi + 1 < n:
            cur[alive, hi + 1 :] = inf
        # Early abandoning: a candidate whose whole row already exceeds
        # the cutoff can never come back under it.
        keep = row_min <= cutoff_sq
        if not keep.all():
            alive = alive[keep]
            if alive.shape[0] == 0:
                return final
        prev, cur = cur, prev

    final[alive] = np.sqrt(prev[alive, n - 1])
    return final
