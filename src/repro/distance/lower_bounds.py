"""Lower-bounding distances used for pruning.

LB_EAPCA (the DSTree/Hercules node bound)
-----------------------------------------
For one segment of length ℓ, write the query's segment statistics as
(μ_Q, σ_Q) and a candidate's as (μ_S, σ_S).  Decomposing the squared
Euclidean distance over the segment around the two means and bounding the
cross term with Cauchy–Schwarz gives

    ED²(Q_seg, S_seg) ≥ ℓ · ((μ_Q − μ_S)² + (σ_Q − σ_S)²).

A node's synopsis stores per-segment intervals [μ_min, μ_max] and
[σ_min, σ_max] over every series in its subtree, so minimizing the bound
over the box yields the node-level lower bound

    LB_EAPCA²(Q, N) = Σ_i ℓ_i · (d(μ_Q,i, [μ_i^min, μ_i^max])²
                                + d(σ_Q,i, [σ_i^min, σ_i^max])²),

where d(x, [a, b]) is the distance from a point to an interval.  This is
the bound used by Algorithms 10–12 of the paper (LB_EAPCA of [64]).

LB_SAX lives on :class:`repro.summarization.sax.SaxSpace` (``mindist``) and
:class:`repro.summarization.isax.IsaxWord` (``mindist``); this module adds
LB_PAA (a PAA-to-PAA bound used in tests as a sanity reference) and the
VA+file cell bounds.

Synopsis layout
---------------
Synopses are ``(m, 4)`` float64 arrays with columns
``[MU_MIN, MU_MAX, SD_MIN, SD_MAX]``.
"""

from __future__ import annotations

import numpy as np

from repro.types import DISTANCE_DTYPE

#: Synopsis column indices.
MU_MIN, MU_MAX, SD_MIN, SD_MAX = 0, 1, 2, 3


def _interval_gap(values: np.ndarray, low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Distance from each value to its interval [low, high] (0 if inside)."""
    return np.maximum(np.maximum(low - values, values - high), 0.0)


def lb_eapca(
    query_means: np.ndarray,
    query_stds: np.ndarray,
    synopsis: np.ndarray,
    segment_lengths: np.ndarray,
) -> float:
    """LB_EAPCA between a query and one node synopsis.

    Parameters
    ----------
    query_means, query_stds:
        Query statistics under the *node's* segmentation, shape ``(m,)``.
    synopsis:
        Node synopsis, shape ``(m, 4)`` (see module docstring).
    segment_lengths:
        ℓ_i weights, shape ``(m,)``.
    """
    mu_gap = _interval_gap(query_means, synopsis[:, MU_MIN], synopsis[:, MU_MAX])
    sd_gap = _interval_gap(query_stds, synopsis[:, SD_MIN], synopsis[:, SD_MAX])
    total = np.dot(segment_lengths, mu_gap * mu_gap + sd_gap * sd_gap)
    return float(np.sqrt(total))


def lb_eapca_batch(
    query_means: np.ndarray,
    query_stds: np.ndarray,
    synopses: np.ndarray,
    segment_lengths: np.ndarray,
) -> np.ndarray:
    """LB_EAPCA against many synopses sharing one segmentation.

    ``synopses`` has shape ``(count, m, 4)``; returns ``(count,)`` bounds.
    Used to evaluate both children of a split in one call and to bound all
    series of a leaf during tests.
    """
    syn = np.asarray(synopses, dtype=DISTANCE_DTYPE)
    if syn.ndim != 3 or syn.shape[2] != 4:
        raise ValueError(f"expected (count, m, 4) synopses, got {syn.shape}")
    mu_gap = _interval_gap(query_means, syn[:, :, MU_MIN], syn[:, :, MU_MAX])
    sd_gap = _interval_gap(query_stds, syn[:, :, SD_MIN], syn[:, :, SD_MAX])
    totals = (mu_gap * mu_gap + sd_gap * sd_gap) @ np.asarray(
        segment_lengths, dtype=DISTANCE_DTYPE
    )
    return np.sqrt(totals)


def series_synopsis(means: np.ndarray, stds: np.ndarray) -> np.ndarray:
    """Degenerate synopsis of a single series (point intervals).

    Handy in tests: LB_EAPCA against it equals the per-series EAPCA bound.
    Accepts ``(m,)`` vectors and returns an ``(m, 4)`` synopsis.
    """
    m = means.shape[0]
    syn = np.empty((m, 4), dtype=DISTANCE_DTYPE)
    syn[:, MU_MIN] = means
    syn[:, MU_MAX] = means
    syn[:, SD_MIN] = stds
    syn[:, SD_MAX] = stds
    return syn


def lb_paa(
    query_paa: np.ndarray, candidate_paa: np.ndarray, series_length: int
) -> np.ndarray:
    """PAA lower bound: ``sqrt(n/w · Σ (q_i − c_i)²)``.

    ``candidate_paa`` may be one vector or a batch of rows.
    """
    q = np.asarray(query_paa, dtype=DISTANCE_DTYPE)
    c = np.asarray(candidate_paa, dtype=DISTANCE_DTYPE)
    squeeze = c.ndim == 1
    if squeeze:
        c = c.reshape(1, -1)
    if c.shape[1] != q.shape[0]:
        raise ValueError(f"PAA width mismatch: {q.shape} vs {c.shape}")
    diff = c - q
    scale = series_length / q.shape[0]
    out = np.sqrt(scale * np.einsum("ij,ij->i", diff, diff))
    return float(out[0]) if squeeze else out


def va_cell_bounds(
    query_features: np.ndarray,
    cell_lower: np.ndarray,
    cell_upper: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Lower/upper distance bounds from a query to quantization cells.

    ``cell_lower``/``cell_upper`` are ``(count, d)`` per-dimension cell
    boundary matrices.  The lower bound is the distance to the nearest
    point of each cell; the upper bound to its farthest corner.  Because
    the feature transform (orthonormal DFT prefix) underestimates the true
    distance, the lower bound is a valid ED lower bound, while the upper
    bound is only an upper bound *in feature space* — VA+file therefore
    uses real distances (not UBs) to tighten its best-so-far, and we do the
    same; the UB is used only to seed the candidate ordering.
    """
    q = np.asarray(query_features, dtype=DISTANCE_DTYPE)
    lo = np.asarray(cell_lower, dtype=DISTANCE_DTYPE)
    hi = np.asarray(cell_upper, dtype=DISTANCE_DTYPE)
    squeeze = lo.ndim == 1
    if squeeze:
        lo = lo.reshape(1, -1)
        hi = hi.reshape(1, -1)
    gap = _interval_gap(q, lo, hi)
    lower = np.sqrt(np.einsum("ij,ij->i", gap, gap))
    far = np.maximum(np.abs(q - lo), np.abs(hi - q))
    upper = np.sqrt(np.einsum("ij,ij->i", far, far))
    if squeeze:
        return lower[0], upper[0]
    return lower, upper
