"""Command-line interface: ``python -m repro <command>``.

Mirrors the workflow of the original Hercules tooling (a dataset file in,
an index directory out, queries against it), plus dataset generation and
method comparison for experimentation:

* ``generate`` — write a synthetic dataset (synth / sald / seismic /
  deep) as a raw float32 binary file;
* ``build``    — build and materialize a Hercules index over a dataset;
* ``query``    — answer exact (or ε-approximate) k-NN queries from a
  query file against a materialized index;
* ``explain``  — answer queries and print per-query cost breakdowns
  (phase timings, pruning ratios, candidate counts, modeled I/O);
* ``inspect``  — print structural statistics of a materialized index;
* ``verify-index`` — check a materialized index directory's manifest,
  artifact checksums, and cross-file invariants;
* ``compare``  — run every method over one dataset and print the
  comparison table.

Dataset files are headerless float32 series (the format of the original
artifacts), so ``--length`` must accompany every dataset path.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.core import (
    HerculesConfig,
    HerculesIndex,
    ShardedIndex,
    ShardedQueryAnswer,
    open_index,
    record_sharded_profile,
)
from repro.core.stats import tree_statistics
from repro.errors import ReproError
from repro.storage.dataset import Dataset
from repro.workloads.datasets import DATASET_ANALOGS, make_analog
from repro.workloads.generators import random_walks


@contextlib.contextmanager
def _maybe_trace(args: argparse.Namespace):
    """Activate tracing for the command when ``--trace FILE`` was given."""
    path = getattr(args, "trace", None)
    if path is None:
        yield None
        return
    trace = obs.Trace(name=args.command)
    with obs.use_trace(trace):
        yield trace
    trace.save(path)
    print(f"trace with {len(trace)} spans written to {path}")


@contextlib.contextmanager
def _maybe_telemetry(args: argparse.Namespace):
    """Activate the telemetry pipeline when ``--telemetry-dir`` was given.

    Builds a :class:`~repro.obs.TelemetryHub` (windowed metrics + event
    journal + SLO tracker), attaches a /proc resource sampler when the
    platform has one (the coordinator is watched immediately; shard
    supervisors register worker pids as they spawn), and flushes
    everything to the spool directory every ``--telemetry-interval``
    seconds — plus once more at exit, so even a short run leaves a
    complete spool for ``repro monitor``.
    """
    directory = getattr(args, "telemetry_dir", None)
    if directory is None:
        yield None
        return
    interval = getattr(args, "telemetry_interval", 2.0)
    hub = obs.TelemetryHub()
    sampler = None
    if obs.proc_available():
        sampler = obs.ResourceSampler(hub.registry, interval=interval)
        sampler.watch("", os.getpid())
        hub.sampler = sampler
    sink = obs.TelemetrySink(
        directory,
        registry=hub.registry,
        journal=hub.journal,
        slo=hub.slo,
        sampler=sampler,
        interval=interval,
    )
    sink.start()
    try:
        with obs.use_hub(hub):
            yield hub
    finally:
        sink.close()
        print(f"telemetry spool written to {directory}")


def _add_telemetry_flags(parser) -> None:
    parser.add_argument(
        "--telemetry-dir", type=Path, default=None,
        help="write a live telemetry spool (OpenMetrics text, JSON "
             "snapshot, event journal, resource samples) to this "
             "directory; tail it with `repro monitor`")
    parser.add_argument(
        "--telemetry-interval", type=float, default=2.0,
        help="seconds between telemetry flushes (default 2)")


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synth":
        data = random_walks(args.count, args.length, seed=args.seed)
    else:
        name = {"sald": "SALD", "seismic": "Seismic", "deep": "Deep"}[args.kind]
        data = make_analog(name, args.count, length=args.length, seed=args.seed)
    Dataset.write(args.output, data).close()
    print(
        f"wrote {args.count} x {data.shape[1]} float32 series "
        f"({data.nbytes / 1e6:.1f} MB) to {args.output}"
    )
    return 0


def _cmd_generate_workload(args: argparse.Namespace) -> int:
    from repro.workloads.generators import make_query_workloads
    from repro.workloads.io import save_workload_bundle

    if args.kind == "synth":
        data = random_walks(args.count, args.length, seed=args.seed)
    else:
        name = {"sald": "SALD", "seismic": "Seismic", "deep": "Deep"}[args.kind]
        data = make_analog(name, args.count, length=args.length, seed=args.seed)
    indexable, workloads = make_query_workloads(
        data, queries_per_workload=args.queries, seed=args.seed
    )
    save_workload_bundle(
        args.output,
        indexable,
        workloads,
        metadata={"kind": args.kind, "seed": args.seed},
    )
    labels = ", ".join(workloads)
    print(
        f"wrote bundle to {args.output}: {indexable.shape[0]} indexable "
        f"series plus workloads [{labels}] x {args.queries} queries"
    )
    return 0


def _resilience_overrides(args: argparse.Namespace) -> dict:
    """Config overrides from the shared resilience flags (only those set)."""
    overrides = {}
    if getattr(args, "partial_results", False):
        overrides["partial_results"] = True
    if getattr(args, "shard_retries", None) is not None:
        overrides["shard_retry_attempts"] = args.shard_retries
    if getattr(args, "shard_timeout", None) is not None:
        overrides["shard_timeout"] = args.shard_timeout
    if getattr(args, "query_deadline", None) is not None:
        overrides["query_deadline"] = args.query_deadline
    return overrides


def _add_resilience_flags(parser) -> None:
    """Query-side resilience flags shared by ``query`` and ``explain``."""
    parser.add_argument(
        "--partial-results", action="store_true",
        help="allow degraded answers: drop shards that still fail after "
             "retries instead of erroring (coverage is reported)")
    parser.add_argument(
        "--shard-retries", type=int, default=None,
        help="total tries per shard dispatch (default: index config, 3)")
    parser.add_argument(
        "--shard-timeout", type=float, default=None,
        help="seconds one shard attempt may run before it counts as failed")
    parser.add_argument(
        "--query-deadline", type=float, default=None,
        help="whole-query wall-clock budget in seconds across all "
             "shards and retries")


def _cmd_build(args: argparse.Namespace) -> int:
    supervision_overrides = {}
    if args.max_worker_restarts is not None:
        supervision_overrides["max_worker_restarts"] = args.max_worker_restarts
    if args.stall_timeout is not None:
        supervision_overrides["build_stall_timeout"] = args.stall_timeout
    config = HerculesConfig(
        leaf_capacity=args.leaf_capacity,
        initial_segments=args.initial_segments,
        num_build_threads=args.threads,
        flush_threshold=max((args.threads - 1) // 2, 1),
        num_write_threads=max(args.threads // 2, 1),
        num_query_threads=args.threads,
        l_max=args.l_max,
        batched_inserts=not args.per_row,
        claim_size=args.claim_size,
        num_shards=args.shards,
        shard_workers=args.shard_workers,
        prefilter=args.prefilter,
        prefilter_bits=args.prefilter_bits,
        **supervision_overrides,
    )
    with _maybe_telemetry(args), _maybe_trace(args), \
            Dataset.open(args.dataset, args.length) as dataset:
        # Delegates to the classic single-index build when --shards 1,
        # keeping that layout byte-identical to previous releases.
        index = ShardedIndex.build(dataset, config, directory=args.output)
        hub = obs.get_hub()
        if hub is not None:
            obs.record_build(hub.registry, index.build_report)
            if isinstance(index, ShardedIndex):
                index.merge_worker_metrics(hub.registry)
    report = index.build_report
    print(
        f"built index over {report.num_series} series: "
        f"{report.num_leaves} leaves, {report.splits} splits, "
        f"{report.flushes} flushes"
    )
    if isinstance(index, ShardedIndex):
        sizes = ", ".join(str(s.num_series) for s in index.shards)
        print(
            f"{index.num_shards} shards [{sizes}] built in "
            f"{report.wall_seconds:.2f}s wall "
            f"({report.series_per_sec:,.0f} series/s end-to-end; "
            f"critical path {report.build_seconds:.2f}s build + "
            f"{report.write_seconds:.2f}s write)"
        )
        if report.worker_restarts or report.requeued_tasks or report.task_retries:
            print(
                f"supervision: {report.worker_restarts} worker restarts, "
                f"{report.requeued_tasks} tasks requeued off dead workers, "
                f"{report.task_retries} shard builds retried"
            )
    else:
        print(
            f"building {report.build_seconds:.2f}s + "
            f"writing {report.write_seconds:.2f}s = {report.total_seconds:.2f}s "
            f"({report.series_per_sec:,.0f} series/s)"
        )
    if args.verbose >= 1:
        # Table-4-style phase breakdown of the tree-construction stage.
        phases = (
            ("routing", report.route_seconds),
            ("hbuffer stores", report.store_seconds),
            ("splits", report.split_seconds),
            ("flushes", report.flush_seconds),
        )
        accounted = sum(seconds for _, seconds in phases)
        print("build phase breakdown:")
        for label, seconds in phases:
            share = seconds / report.build_seconds if report.build_seconds else 0.0
            print(f"  {label:<15} {seconds:8.3f}s  ({share:6.1%})")
        other = max(report.build_seconds - accounted, 0.0)
        share = other / report.build_seconds if report.build_seconds else 0.0
        print(f"  {'other':<15} {other:8.3f}s  ({share:6.1%})")
    print(f"index materialized in {index.directory}")
    index.close()
    return 0


def _cache_bytes(args: argparse.Namespace) -> int:
    return int(getattr(args, "cache_mb", 0.0) * (1 << 20))


def _cmd_query(args: argparse.Namespace) -> int:
    with _maybe_telemetry(args):
        return _run_query(args)


def _run_query(args: argparse.Namespace) -> int:
    index = open_index(
        args.index,
        cache_bytes=_cache_bytes(args),
        workers=getattr(args, "shard_workers", None),
    )
    hub = obs.get_hub()
    config = index.config.with_options(
        epsilon=args.epsilon, **_resilience_overrides(args)
    )
    if isinstance(index, ShardedIndex):
        # knn_approx and retry policy read the index config directly.
        index.config = config
        if hub is not None:
            index.bind_metrics(hub.registry)
    if getattr(args, "batch", False) and args.approximate:
        print(
            "error: --batch applies to exact/epsilon search only "
            "(drop --approximate)",
            file=sys.stderr,
        )
        index.close()
        return 2
    with _maybe_trace(args), Dataset.open(args.queries, index.series_length) as queries:
        count = queries.num_series if args.count is None else min(
            args.count, queries.num_series
        )
        total = 0.0
        degraded = 0

        def report(i, answer):
            if hub is not None:
                if isinstance(answer, ShardedQueryAnswer):
                    record_sharded_profile(hub.registry, answer)
                else:
                    # Sharded answers are observed by the coordinator's
                    # settle step; plain answers are observed here.
                    obs.observe_query(answer.profile.time_total)
                    obs.record_profile(
                        hub.registry,
                        answer.profile,
                        num_series=index.num_series,
                    )
            distances = ", ".join(f"{d:.4f}" for d in answer.distances)
            positions = ", ".join(str(int(p)) for p in answer.positions)
            print(
                f"query {i}: d=[{distances}] pos=[{positions}] "
                f"path={answer.profile.path} "
                f"accessed={answer.profile.data_accessed_fraction(index.num_series):.2%} "
                f"({answer.profile.time_total * 1e3:.1f} ms)"
            )
            return _print_degradation(answer, f"query {i}")

        if getattr(args, "batch", False):
            import numpy as np

            block = np.stack(
                [queries.read_series(i) for i in range(count)]
            )
            batch = index.knn_batch(block, k=args.k, config=config)
            for i, answer in enumerate(batch):
                total += answer.profile.time_total
                degraded += report(i, answer)
            stats = batch.stats
            if hub is not None:
                obs.record_batch_stats(hub.registry, stats)
            print(
                f"batch: {stats.unique_leaf_reads} leaf reads serving "
                f"{stats.leaf_uses} uses "
                f"(leaf-sharing {stats.leaf_share_factor:.2f}x, "
                f"{stats.kernel_rows_per_read:.1f} kernel rows/read, "
                f"screen {stats.screen_seconds_per_query * 1e3:.2f} ms/query)"
            )
        else:
            for i in range(count):
                query = queries.read_series(i)
                if args.approximate:
                    answer = index.knn_approx(query, k=args.k)
                else:
                    answer = index.knn(query, k=args.k, config=config)
                total += answer.profile.time_total
                degraded += report(i, answer)
    print(f"answered {count} queries in {total:.3f}s")
    if degraded:
        print(f"WARNING: {degraded} of {count} answers were degraded")
    _print_cache_stats(index)
    index.close()
    return 0


def _print_degradation(answer, label: str) -> int:
    """One warning line per degraded/retried answer; returns 1 if degraded."""
    if not isinstance(answer, ShardedQueryAnswer):
        return 0
    if answer.retries and not answer.degraded:
        print(f"  {label}: recovered after {answer.retries} shard retries")
    if not answer.degraded:
        return 0
    dropped = ", ".join(
        f"shard {sid} ({reason})" for sid, reason in answer.shard_errors
    )
    print(
        f"  {label}: DEGRADED — coverage {answer.coverage:.2%} "
        f"after {answer.retries} retries; dropped {dropped}"
    )
    return 1


def _print_cache_stats(index) -> None:
    """Leaf-cache summary lines; per shard for a sharded index."""
    if isinstance(index, ShardedIndex):
        for shard_id, shard in enumerate(index.shards):
            cache = shard.leaf_cache
            if cache is not None:
                snap = cache.snapshot()
                print(
                    f"leaf cache shard {shard_id}: {snap.hits} hits, "
                    f"{snap.misses} misses (hit rate {snap.hit_rate:.2%}), "
                    f"{snap.current_bytes / 1e6:.1f} MB resident"
                )
        return
    cache = index.leaf_cache
    if cache is not None:
        snap = cache.snapshot()
        print(
            f"leaf cache: {snap.hits} hits, {snap.misses} misses "
            f"(hit rate {snap.hit_rate:.2%}), "
            f"{snap.current_bytes / 1e6:.1f} MB resident"
        )


def _cmd_explain(args: argparse.Namespace) -> int:
    with _maybe_telemetry(args):
        return _run_explain(args)


def _run_explain(args: argparse.Namespace) -> int:
    index = open_index(
        args.index,
        cache_bytes=_cache_bytes(args),
        workers=getattr(args, "shard_workers", None),
    )
    config = index.config.with_options(
        epsilon=args.epsilon, **_resilience_overrides(args)
    )
    if isinstance(index, ShardedIndex):
        index.config = config
    registry = obs.MetricsRegistry()
    with _maybe_trace(args), Dataset.open(args.queries, index.series_length) as queries:
        count = queries.num_series if args.count is None else min(
            args.count, queries.num_series
        )
        for i in range(count):
            query = queries.read_series(i)
            answer = index.knn(query, k=args.k, config=config)
            if isinstance(answer, ShardedQueryAnswer):
                record_sharded_profile(
                    registry, answer, num_series=index.num_series
                )
            else:
                obs.record_profile(
                    registry, answer.profile, num_series=index.num_series
                )
            print(
                obs.explain_profile(
                    answer.profile,
                    num_series=index.num_series,
                    label=f"query {i}",
                )
            )
            if isinstance(answer, ShardedQueryAnswer):
                for shard_id, shard_answer in answer.shard_answers:
                    p = shard_answer.profile
                    print(
                        f"  shard {shard_id}: path={p.path or '?'}  "
                        f"{p.candidate_leaves} cand leaves  "
                        f"{p.distance_computations} dists  "
                        f"{p.series_accessed} series read  "
                        f"{p.time_total * 1e3:.1f} ms"
                    )
                _print_degradation(answer, f"query {i}")
            print()
    print(obs.explain_workload_summary(registry))
    index.close()
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    index = open_index(args.index)
    if isinstance(index, ShardedIndex):
        print(f"sharded index at {index.directory}")
        print(f"generation         {index.generation}")
        print(f"shards             {index.num_shards}")
        print(f"series length      {index.series_length}")
        print(f"total series       {index.num_series}")
        for shard_id, shard in enumerate(index.shards):
            stats = tree_statistics(shard.root, shard.config.leaf_capacity)
            print(
                f"\n-- shard {shard_id:04d}: {shard.num_series} series, "
                f"row base {index.row_bases[shard_id]}"
            )
            print(stats.format())
    else:
        stats = tree_statistics(index.root, index.config.leaf_capacity)
        print(f"index at {index.directory}")
        print(f"series length      {index.series_length}")
        print(stats.format())
    index.close()
    return 0


def _cmd_verify_index(args: argparse.Namespace) -> int:
    from repro.errors import ReproError, StorageError
    from repro.storage import manifest as manifest_mod
    from repro.storage.htree import FORMAT_VERSION as HTREE_FORMAT_VERSION
    from repro.core.writing import HTREE_FILENAME, LRD_FILENAME, LSD_FILENAME

    directory = Path(args.index)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 1
    if manifest_mod.is_sharded_directory(directory):
        return _verify_sharded_directory(directory, args.level)
    failures = 0
    manifest = None
    name_width = max(len(manifest_mod.MANIFEST_FILENAME), 12) + 2
    if not (directory / manifest_mod.MANIFEST_FILENAME).exists():
        print(
            f"{manifest_mod.MANIFEST_FILENAME:<{name_width}}"
            "missing (legacy pre-manifest directory)"
        )
    else:
        try:
            manifest = manifest_mod.load_manifest(directory)
            print(
                f"{manifest_mod.MANIFEST_FILENAME:<{name_width}}ok "
                f"({manifest.num_series} series, {manifest.num_leaves} "
                f"leaves, config {manifest.config_digest})"
            )
        except StorageError as exc:
            print(f"{manifest_mod.MANIFEST_FILENAME:<{name_width}}DAMAGED — {exc}")
            failures += 1
    if manifest is not None:
        expected = {
            LRD_FILENAME: manifest_mod.LRD_FORMAT_VERSION,
            LSD_FILENAME: manifest_mod.LSD_FORMAT_VERSION,
            HTREE_FILENAME: HTREE_FORMAT_VERSION,
        }
        for name, record in sorted(manifest.artifacts.items()):
            try:
                manifest_mod.check_artifact(
                    directory,
                    record,
                    level=args.level,
                    expected_version=expected.get(name),
                )
                detail = f"ok ({record.size} bytes"
                if args.level == "full":
                    detail += f", crc32 {record.crc32:#010x} verified"
                print(f"{name:<{name_width}}{detail})")
            except StorageError as exc:
                print(f"{name:<{name_width}}DAMAGED — {exc}")
                failures += 1
    if failures == 0:
        # Per-artifact bytes are sound; prove the directory also opens as
        # one coherent generation (cross-file invariants included).
        try:
            index = HerculesIndex.open(directory, verify=args.level)
            print(
                f"{'index':<{name_width}}ok ({index.num_series} series, "
                f"{index.num_leaves} leaves, length {index.series_length})"
            )
            index.close()
        except ReproError as exc:
            print(f"{'index':<{name_width}}DAMAGED — {exc}")
            failures += 1
    if failures:
        print(f"\n{failures} damaged artifact(s) in {directory}")
        return 1
    print(f"\n{directory} is healthy ({args.level} verification)")
    return 0


def _verify_sharded_directory(directory: Path, level: str) -> int:
    """The sharded branch of ``verify-index``: recurse into every shard.

    Prints one row per artifact as ``shard-XXXX/name`` and always names
    the failing shard, so a damaged shard is locatable at a glance.
    """
    from repro.errors import ReproError, StorageError
    from repro.storage import manifest as manifest_mod
    from repro.storage.htree import FORMAT_VERSION as HTREE_FORMAT_VERSION
    from repro.core.writing import HTREE_FILENAME, LRD_FILENAME, LSD_FILENAME

    failures = 0
    name_width = (
        max(len(manifest_mod.SHARDS_FILENAME),
            len(manifest_mod.shard_dirname(0))
            + 1 + len(manifest_mod.MANIFEST_FILENAME)) + 2
    )
    try:
        shard_manifest = manifest_mod.load_shard_manifest(directory)
    except StorageError as exc:
        print(f"{manifest_mod.SHARDS_FILENAME:<{name_width}}DAMAGED — {exc}")
        print(f"\n1 damaged artifact(s) in {directory}")
        return 1
    print(
        f"{manifest_mod.SHARDS_FILENAME:<{name_width}}ok "
        f"(generation {shard_manifest.generation}, "
        f"{shard_manifest.num_shards} shards, "
        f"{shard_manifest.num_series} series, "
        f"config {shard_manifest.config_digest})"
    )
    expected = {
        LRD_FILENAME: manifest_mod.LRD_FORMAT_VERSION,
        LSD_FILENAME: manifest_mod.LSD_FORMAT_VERSION,
        HTREE_FILENAME: HTREE_FORMAT_VERSION,
    }
    healthy_shards = 0
    healthy_series = 0
    for record in shard_manifest.shards:
        label = f"{record.name}/{manifest_mod.MANIFEST_FILENAME}"
        try:
            sub_manifest = manifest_mod.verify_shard_record(directory, record)
        except StorageError as exc:
            print(f"{label:<{name_width}}DAMAGED — {exc}")
            failures += 1
            continue
        print(
            f"{label:<{name_width}}ok ({record.num_series} series, "
            f"{record.num_leaves} leaves)"
        )
        shard_failures = 0
        for name, artifact in sorted(sub_manifest.artifacts.items()):
            row = f"{record.name}/{name}"
            try:
                manifest_mod.check_artifact(
                    directory / record.name,
                    artifact,
                    level=level,
                    expected_version=expected.get(name),
                )
                detail = f"ok ({artifact.size} bytes"
                if level == "full":
                    detail += f", crc32 {artifact.crc32:#010x} verified"
                print(f"{row:<{name_width}}{detail})")
            except StorageError as exc:
                print(
                    f"{row:<{name_width}}DAMAGED — shard {record.name}: {exc}"
                )
                shard_failures += 1
        failures += shard_failures
        if shard_failures == 0:
            healthy_shards += 1
            healthy_series += record.num_series
    if failures == 0:
        # Per-shard bytes are sound; prove the whole directory opens as
        # one coherent generation (contiguous row bases included).
        try:
            index = ShardedIndex.open(directory, verify=level)
            print(
                f"{'index':<{name_width}}ok ({index.num_series} series "
                f"over {index.num_shards} shards, length "
                f"{index.series_length})"
            )
            index.close()
        except ReproError as exc:
            print(f"{'index':<{name_width}}DAMAGED — {exc}")
            failures += 1
    if failures:
        print(f"\n{failures} damaged artifact(s) in {directory}")
        if 0 < healthy_shards < shard_manifest.num_shards:
            print(
                f"a --partial-results query would cover "
                f"{healthy_series}/{shard_manifest.num_series} series "
                f"({healthy_shards}/{shard_manifest.num_shards} shards "
                "healthy)"
            )
        return 1
    print(f"\n{directory} is healthy ({level} verification, sharded)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.eval.methods import ALL_METHODS, build_methods
    from repro.eval.verify import verify_epsilon, verify_exactness
    from repro.workloads.generators import make_noise_queries

    with Dataset.open(args.dataset, args.length) as dataset:
        data = dataset.load_all()
        queries = make_noise_queries(
            data, args.num_queries, args.noise, seed=args.seed
        )
        methods = build_methods(dataset, names=ALL_METHODS)
        all_passed = True
        for name in ALL_METHODS:
            report = verify_exactness(
                methods[name].method, data, queries, k=args.k
            )
            print(report.format())
            all_passed &= report.passed
        hercules = methods["Hercules"].method
        for epsilon in (0.1, 0.5):
            report = verify_epsilon(hercules, data, queries, epsilon, k=args.k)
            print(report.format())
            all_passed &= report.passed
        for built in methods.values():
            built.close()
    return 0 if all_passed else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.eval.metrics import run_workload
    from repro.eval.methods import ALL_METHODS, build_methods
    from repro.eval.report import print_table
    from repro.workloads.generators import make_noise_queries

    started = time.perf_counter()
    with _maybe_telemetry(args), _maybe_trace(args), \
            Dataset.open(args.dataset, args.length) as dataset:
        data = dataset.load_all()
        queries = make_noise_queries(
            data, args.num_queries, args.noise, seed=args.seed
        )
        methods = build_methods(
            dataset,
            names=ALL_METHODS,
            cache_bytes=_cache_bytes(args),
            num_shards=args.shards,
            shard_workers=args.shard_workers,
            prefilter=args.prefilter,
            prefilter_bits=args.prefilter_bits,
        )
        rows = []
        for name in ALL_METHODS:
            built = methods[name]
            batched = getattr(args, "batch", False) and hasattr(
                built.method, "knn_batch"
            )
            result = run_workload(
                built.method, queries, k=args.k, batched=batched
            )
            hit_rate = result.avg_cache_hit_rate
            pruned = result.avg_prefilter_pruned_fraction
            rows.append(
                [
                    name,
                    built.build_seconds,
                    result.avg_query_seconds * 1e3,
                    result.avg_modeled_io_seconds * 1e3,
                    f"{result.avg_data_accessed:.2%}",
                    f"{result.avg_abandoned_fraction:.2%}",
                    "-" if pruned is None else f"{pruned:.2%}",
                    "-" if hit_rate is None else f"{hit_rate:.2%}",
                ]
            )
            built.close()
    print_table(
        f"{args.dataset} — {args.num_queries} x {args.k}-NN "
        f"(noise σ²={args.noise})",
        [
            "method",
            "build_s",
            "query_ms",
            "modeled_io_ms",
            "data_accessed",
            "abandoned",
            "prefilter",
            "cache_hit",
        ],
        rows,
    )
    print(f"\ncompare finished in {time.perf_counter() - started:.1f}s")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    iterations = 1 if args.once else args.iterations
    return obs.run_monitor(
        args.directory,
        interval=args.interval,
        iterations=iterations,
        clear=not args.once,
    )


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.eval.benchdiff import diff_bench_files

    report = diff_bench_files(
        args.baseline,
        args.fresh,
        threshold=args.threshold,
        include_timings=args.include_timings,
        ignore=args.ignore,
    )
    print(report.render())
    return 1 if report.regressions else 0


_FIGURE_RUNNERS = {
    "fig6": ("figure6_dataset_size", {}),
    "fig7": ("figure7_large_datasets", {}),
    "fig8": ("figure8_series_length", {}),
    "fig9": ("difficulty_experiment", {}),
    "fig10": ("difficulty_experiment", {"workloads": ("1%", "5%", "ood")}),
    "fig11": ("figure11_knn_k", {}),
    "fig12a": ("figure12_ablation_indexing", {}),
    "fig12b": ("figure12_ablation_query", {}),
}


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.figure == "all":
        for figure in sorted(_FIGURE_RUNNERS):
            print(f"\n=== {figure} ===")
            sub_args = argparse.Namespace(
                figure=figure, size=args.size, num_queries=args.num_queries
            )
            _run_figure(sub_args)
        return 0
    return _run_figure(args)


def _run_figure(args: argparse.Namespace) -> int:
    from repro.eval import experiments

    import inspect

    name, kwargs = _FIGURE_RUNNERS[args.figure]
    kwargs = dict(kwargs)
    runner = getattr(experiments, name)
    accepted = inspect.signature(runner).parameters
    if args.size is not None:
        if "sizes" in accepted:
            kwargs["sizes"] = (args.size,)
        elif "size" in accepted:
            kwargs["size"] = args.size
    if args.num_queries is not None and "num_queries" in accepted:
        kwargs["num_queries"] = args.num_queries
    runner(verbose=True, **kwargs)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hercules data-series similarity search (PVLDB 2022 reproduction)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v: info, -vv: debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="decrease log verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset file")
    gen.add_argument("--kind", choices=("synth", "sald", "seismic", "deep"),
                     default="synth")
    gen.add_argument("--count", type=int, required=True)
    gen.add_argument("--length", type=int, default=None,
                     help="series length (defaults to the analog's paper length)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", type=Path, required=True)
    gen.set_defaults(func=_cmd_generate)

    bundle = sub.add_parser(
        "generate-workload",
        help="write a dataset plus its five query workloads as a bundle",
    )
    bundle.add_argument("--kind", choices=("synth", "sald", "seismic", "deep"),
                        default="synth")
    bundle.add_argument("--count", type=int, required=True)
    bundle.add_argument("--length", type=int, default=None)
    bundle.add_argument("--queries", type=int, default=100)
    bundle.add_argument("--seed", type=int, default=0)
    bundle.add_argument("--output", type=Path, required=True)
    bundle.set_defaults(func=_cmd_generate_workload)

    build = sub.add_parser("build", help="build a Hercules index")
    build.add_argument("--dataset", type=Path, required=True)
    build.add_argument("--length", type=int, required=True)
    build.add_argument("--output", type=Path, required=True)
    build.add_argument("--leaf-capacity", type=int, default=100)
    build.add_argument("--initial-segments", type=int, default=4)
    build.add_argument("--threads", type=int, default=4)
    build.add_argument("--l-max", type=int, default=8)
    build.add_argument("--claim-size", type=int, default=None,
                       help="series claimed per FetchAdd during batched "
                            "insertion (default: auto)")
    build.add_argument("--per-row", action="store_true",
                       help="use the per-row reference insertion path "
                            "instead of grouped batches")
    build.add_argument("--shards", type=int, default=1,
                       help="partition the dataset into N index shards "
                            "(1: classic single-tree layout, byte-identical "
                            "to previous releases)")
    build.add_argument("--shard-workers", type=int, default=None,
                       help="worker processes building shards in parallel "
                            "(default: min(shards, cpu_count); 0/1: build "
                            "shards sequentially in-process)")
    build.add_argument("--prefilter", action="store_true",
                       help="materialize the in-RAM signature pre-filter "
                            "tier (signatures.bin): exact queries screen "
                            "the whole array with one vectorized lower-"
                            "bound pass before any tree descent")
    build.add_argument("--prefilter-bits", type=int, default=4,
                       help="iSAX bits per segment kept in each signature "
                            "(1-8, default 4; more bits prune more but "
                            "cost segments*bits/8 bytes per series)")
    build.add_argument("--max-worker-restarts", type=int, default=None,
                       help="replacement build workers the supervisor may "
                            "spawn after dead-worker detection (default: 2)")
    build.add_argument("--stall-timeout", type=float, default=None,
                       help="seconds without worker progress before a "
                            "sharded build is declared dead (default: 600)")
    build.add_argument("--trace", type=Path, default=None,
                       help="write a Chrome-trace JSON of the build to FILE")
    _add_telemetry_flags(build)
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="answer k-NN queries from a file")
    query.add_argument("--index", type=Path, required=True)
    query.add_argument("--queries", type=Path, required=True)
    query.add_argument("--k", type=int, default=1)
    query.add_argument("--count", type=int, default=None,
                       help="number of queries to run (default: all)")
    query.add_argument("--epsilon", type=float, default=0.0,
                       help="epsilon-approximate search factor")
    query.add_argument("--approximate", action="store_true",
                       help="approximate-only search (phase 1)")
    query.add_argument("--batch", action="store_true",
                       help="answer the whole query set with the batched "
                            "engine (shared-leaf scans, one-pass screening); "
                            "answers are identical to serial execution")
    query.add_argument("--cache-mb", type=float, default=0.0,
                       help="leaf-block LRU cache budget in MiB (0: disabled; "
                            "split evenly across shards of a sharded index)")
    query.add_argument("--shard-workers", type=int, default=None,
                       help="persistent query worker processes for a sharded "
                            "index (default: in-process threads)")
    _add_resilience_flags(query)
    query.add_argument("--trace", type=Path, default=None,
                       help="write a Chrome-trace JSON of the queries to FILE")
    _add_telemetry_flags(query)
    query.set_defaults(func=_cmd_query)

    explain = sub.add_parser(
        "explain",
        help="answer queries and print per-query cost breakdowns "
        "(phase timings, pruning ratios, modeled I/O)",
    )
    explain.add_argument("--index", type=Path, required=True)
    explain.add_argument("--queries", type=Path, required=True)
    explain.add_argument("--k", type=int, default=1)
    explain.add_argument("--count", type=int, default=None,
                         help="number of queries to explain (default: all)")
    explain.add_argument("--epsilon", type=float, default=0.0,
                         help="epsilon-approximate search factor")
    explain.add_argument("--cache-mb", type=float, default=0.0,
                         help="leaf-block LRU cache budget in MiB (0: disabled)")
    explain.add_argument("--shard-workers", type=int, default=None,
                         help="persistent query worker processes for a "
                              "sharded index (default: in-process threads)")
    _add_resilience_flags(explain)
    explain.add_argument("--trace", type=Path, default=None,
                         help="also write a Chrome-trace JSON to FILE")
    _add_telemetry_flags(explain)
    explain.set_defaults(func=_cmd_explain)

    inspect = sub.add_parser("inspect", help="print index statistics")
    inspect.add_argument("--index", type=Path, required=True)
    inspect.set_defaults(func=_cmd_inspect)

    bench = sub.add_parser(
        "bench", help="run one paper-figure experiment and print its table"
    )
    bench.add_argument(
        "--figure",
        choices=sorted(_FIGURE_RUNNERS) + ["all"],
        required=True,
    )
    bench.add_argument("--size", type=int, default=None,
                       help="dataset size override (series)")
    bench.add_argument("--num-queries", type=int, default=None)
    bench.set_defaults(func=_cmd_bench)

    vindex = sub.add_parser(
        "verify-index",
        help="validate a materialized index directory (manifest, "
        "checksums, cross-file invariants)",
    )
    vindex.add_argument("index", type=Path, help="index directory to check")
    vindex.add_argument(
        "--level",
        choices=("quick", "full"),
        default="full",
        help="quick: sizes and versions; full: recompute checksums (default)",
    )
    vindex.set_defaults(func=_cmd_verify_index)

    verify = sub.add_parser(
        "verify",
        help="prove every method's answers against brute force on a dataset",
    )
    verify.add_argument("--dataset", type=Path, required=True)
    verify.add_argument("--length", type=int, required=True)
    verify.add_argument("--k", type=int, default=10)
    verify.add_argument("--num-queries", type=int, default=10)
    verify.add_argument("--noise", type=float, default=0.05)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(func=_cmd_verify)

    compare = sub.add_parser("compare", help="compare all methods on a dataset")
    compare.add_argument("--dataset", type=Path, required=True)
    compare.add_argument("--length", type=int, required=True)
    compare.add_argument("--k", type=int, default=1)
    compare.add_argument("--num-queries", type=int, default=10)
    compare.add_argument("--noise", type=float, default=0.05)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--cache-mb", type=float, default=0.0,
                         help="leaf-block LRU cache budget in MiB (0: disabled)")
    compare.add_argument("--shards", type=int, default=1,
                         help="build Hercules as N shards (other methods "
                              "are unaffected)")
    compare.add_argument("--shard-workers", type=int, default=None,
                         help="worker processes for the sharded Hercules "
                              "build (default: min(shards, cpu_count))")
    compare.add_argument("--prefilter", action="store_true",
                         help="enable the signature pre-filter tier on the "
                              "methods that have one (Hercules whole-array "
                              "screen; VA+file fair-contender SAX filter)")
    compare.add_argument("--prefilter-bits", type=int, default=4,
                         help="signature bits per segment (1-8, default 4)")
    compare.add_argument("--batch", action="store_true",
                         help="run each method's workload through its batched "
                              "engine where it has one (knn_batch); answers "
                              "and counters match serial execution")
    compare.add_argument("--trace", type=Path, default=None,
                         help="write a Chrome-trace JSON of the run to FILE")
    _add_telemetry_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    monitor = sub.add_parser(
        "monitor",
        help="live terminal dashboard over a telemetry spool directory "
        "(written by --telemetry-dir)",
    )
    monitor.add_argument("directory", type=Path,
                         help="telemetry spool directory to tail")
    monitor.add_argument("--interval", type=float, default=2.0,
                         help="refresh interval in seconds (default 2)")
    monitor.add_argument("--iterations", type=int, default=None,
                         help="render N frames then exit (default: forever)")
    monitor.add_argument("--once", action="store_true",
                         help="render a single frame and exit (pipeable)")
    monitor.set_defaults(func=_cmd_monitor)

    benchdiff = sub.add_parser(
        "bench-diff",
        help="compare a fresh REPRO_BENCH_JSON dump against a committed "
        "baseline and fail on regression",
    )
    benchdiff.add_argument("baseline", type=Path,
                           help="committed baseline BENCH_*.json")
    benchdiff.add_argument("fresh", type=Path,
                           help="freshly produced BENCH_*.json")
    benchdiff.add_argument("--threshold", type=float, default=0.2,
                           help="relative regression that fails the diff "
                                "(default 0.2 = 20%%)")
    benchdiff.add_argument("--include-timings", action="store_true",
                           help="also gate hardware-dependent wall-clock "
                                "metrics (off by default: only ratio/count "
                                "metrics diff cleanly across machines)")
    benchdiff.add_argument("--ignore", action="append", default=[],
                           metavar="SUBSTRING",
                           help="skip metrics whose key contains SUBSTRING "
                                "(repeatable)")
    benchdiff.set_defaults(func=_cmd_bench_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs.configure_logging(args.verbose - args.quiet)
    if args.command in ("generate", "generate-workload") and args.length is None:
        if args.kind == "synth":
            args.length = 128
        else:
            name = {"sald": "SALD", "seismic": "Seismic", "deep": "Deep"}[args.kind]
            args.length = DATASET_ANALOGS[name][1]
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
