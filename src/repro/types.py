"""Shared scalar types and array conventions.

The paper represents data series points with single-precision floats
(Section 4.1), so raw series are stored as ``float32`` throughout.  All
distance *accumulations* are performed in ``float64`` to keep the exactness
invariant (every method returns identical k-NN distances) independent of
summation order across methods and thread schedules.
"""

from __future__ import annotations

import numpy as np

#: dtype of raw data series values on disk and in buffers.
SERIES_DTYPE = np.dtype(np.float32)

#: dtype used for distance accumulation and lower bounds.
DISTANCE_DTYPE = np.dtype(np.float64)

#: dtype of one iSAX symbol at the maximum cardinality (alphabet 256).
SYMBOL_DTYPE = np.dtype(np.uint8)

#: Sentinel used for "no position" in result records.
NO_POSITION = -1


def as_series_matrix(data: np.ndarray) -> np.ndarray:
    """Return ``data`` as a C-contiguous 2-D ``float32`` matrix.

    Accepts a single series (1-D) or a batch (2-D); a single series is
    promoted to a one-row matrix.  Raises ``ValueError`` for other ranks.
    """
    arr = np.asarray(data, dtype=SERIES_DTYPE)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D series data, got ndim={arr.ndim}")
    return np.ascontiguousarray(arr)


def as_series(data: np.ndarray) -> np.ndarray:
    """Return ``data`` as a contiguous 1-D ``float32`` series."""
    arr = np.asarray(data, dtype=SERIES_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"expected a single 1-D series, got ndim={arr.ndim}")
    return np.ascontiguousarray(arr)
