"""PSCAN — the parallel optimized sequential scan (Section 4.1).

PSCAN is the paper's own parallel implementation of the UCR suite
adapted to whole matching: squared distances, early abandoning, SIMD,
and a *double buffer* overlapping disk reads with distance computation.
The structure here mirrors that: a dedicated reader thread streams the
dataset sequentially into a small bounded queue (the double buffer —
the reader fills the next chunk while workers drain previous ones), and
compute threads run the blocked early-abandoning batch kernel (the SIMD
analog) against the global best-so-far.  Keeping all reads on one
thread also keeps the I/O pattern what a scan's should be: one long
sequential pass.

The serial variant in :mod:`repro.baselines.scan` is the reference line
of Figure 9.
"""

from __future__ import annotations

import queue
import threading
from typing import Optional, Union

import numpy as np

from repro.core.query import QueryAnswer, QueryProfile
from repro.obs import timed_profile
from repro.core.results import ResultSet
from repro.distance.euclidean import early_abandon_squared
from repro.errors import ConfigError
from repro.storage.dataset import Dataset
from repro.types import DISTANCE_DTYPE

#: Chunks buffered between the reader and the compute threads.
_QUEUE_DEPTH = 4

_SENTINEL: tuple = ()


class PScan:
    """Parallel early-abandoning scan over the raw dataset file."""

    name = "PSCAN"

    def __init__(
        self,
        data: Union[np.ndarray, Dataset],
        num_threads: int = 4,
        chunk_size: int = 2048,
    ) -> None:
        if num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        self.num_threads = num_threads
        self.chunk_size = chunk_size
        self.num_series = self.dataset.num_series
        self.build_seconds = 0.0  # scans build nothing

    def knn(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        query64 = np.asarray(query, dtype=DISTANCE_DTYPE)
        results = ResultSet(k)
        profile = QueryProfile()
        with timed_profile(
            profile, path="pscan", io_stats=self.dataset.stats, k=k
        ):
            profile_lock = threading.Lock()
            errors: list[BaseException] = []
            chunks: "queue.Queue[tuple]" = queue.Queue(maxsize=_QUEUE_DEPTH)

            def offer(item: tuple) -> bool:
                """Put with periodic error checks so a dead consumer side
                cannot wedge the reader on a full queue."""
                while True:
                    try:
                        chunks.put(item, timeout=0.2)
                        return True
                    except queue.Full:
                        if errors:
                            return False

            def reader() -> None:
                """The double buffer's producer: one sequential pass."""
                try:
                    for start, chunk in self.dataset.iter_batches(self.chunk_size):
                        if not offer((start, chunk)):
                            break
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                finally:
                    # One sentinel suffices: each worker re-offers it on exit,
                    # forming a shutdown chain that survives dead workers.
                    offer(_SENTINEL)

            def worker() -> None:
                try:
                    accessed = 0
                    compared = 0
                    length = max(query64.shape[0], 1)
                    while True:
                        item = chunks.get()
                        if item is _SENTINEL or not item:
                            offer(item)  # pass the shutdown token along
                            break
                        start, chunk = item
                        accessed += chunk.shape[0]
                        squared, points = early_abandon_squared(
                            query64, chunk, results.bsf_squared
                        )
                        compared += points
                        positions = start + np.arange(
                            chunk.shape[0], dtype=np.int64
                        )
                        results.update_batch_squared(squared, positions)
                    with profile_lock:
                        profile.series_accessed += accessed
                        profile.distance_computations += compared // length
                        profile.points_compared += compared
                        profile.points_total += accessed * length
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    offer(_SENTINEL)  # release peers blocked on the queue

            if self.num_threads == 1:
                # Degenerate case: read and compute on the calling thread.
                reader_thread: Optional[threading.Thread] = None
                reader_inline = self.dataset.iter_batches(self.chunk_size)
                length = max(query64.shape[0], 1)
                accessed = compared = 0
                for start, chunk in reader_inline:
                    accessed += chunk.shape[0]
                    squared, points = early_abandon_squared(
                        query64, chunk, results.bsf_squared
                    )
                    compared += points
                    positions = start + np.arange(chunk.shape[0], dtype=np.int64)
                    results.update_batch_squared(squared, positions)
                profile.series_accessed = accessed
                profile.distance_computations = compared // length
                profile.points_compared = compared
                profile.points_total = accessed * length
            else:
                reader_thread = threading.Thread(
                    target=reader, name="pscan-reader", daemon=True
                )
                compute = [
                    threading.Thread(target=worker, name=f"pscan-{i}", daemon=True)
                    for i in range(self.num_threads - 1)
                ]
                reader_thread.start()
                for thread in compute:
                    thread.start()
                reader_thread.join()
                for thread in compute:
                    thread.join()
        distances, positions = results.items()
        return QueryAnswer(distances, positions, profile)

    @property
    def query_io(self):
        """I/O counters of the dataset file being scanned."""
        return self.dataset.stats

    def close(self) -> None:
        """The dataset is managed by the caller."""
