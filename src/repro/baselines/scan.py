"""The plain serial scan — the reference line of Figure 9.

A single thread reads the dataset sequentially and computes full
Euclidean distances with squared-distance comparisons and early
abandoning (the UCR-suite optimizations relevant to whole matching under
ED), with no parallelism and no double buffering.  The whole loop stays
in squared space: the abandoning cutoff is the live BSF² and candidates
enter the result set squared — no per-chunk square root.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.query import QueryAnswer, QueryProfile
from repro.obs import timed_profile
from repro.core.results import ResultSet
from repro.distance.euclidean import early_abandon_squared
from repro.storage.dataset import Dataset
from repro.types import DISTANCE_DTYPE


class SerialScan:
    """Exact k-NN by one sequential pass over the dataset."""

    name = "Serial scan"

    def __init__(
        self, data: Union[np.ndarray, Dataset], chunk_size: int = 2048
    ) -> None:
        self.dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        self.chunk_size = chunk_size
        self.num_series = self.dataset.num_series
        self.build_seconds = 0.0

    def knn(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        query64 = np.asarray(query, dtype=DISTANCE_DTYPE)
        results = ResultSet(k)
        profile = QueryProfile()
        length = max(self.dataset.series_length, 1)
        points = 0

        with timed_profile(
            profile, path="serial-scan", io_stats=self.dataset.stats, k=k
        ):
            for start, chunk in self.dataset.iter_batches(self.chunk_size):
                profile.series_accessed += chunk.shape[0]
                squared, chunk_points = early_abandon_squared(
                    query64, chunk, results.bsf_squared
                )
                points += chunk_points
                positions = start + np.arange(chunk.shape[0], dtype=np.int64)
                results.update_batch_squared(squared, positions)
            profile.distance_computations = points // length
            profile.points_compared = points
            profile.points_total = self.num_series * length

        distances, positions = results.items()
        return QueryAnswer(distances, positions, profile)

    @property
    def query_io(self):
        """I/O counters of the dataset file being scanned."""
        return self.dataset.stats

    def close(self) -> None:
        """The dataset is managed by the caller."""
