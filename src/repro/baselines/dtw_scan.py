"""DTW exact k-NN scan (the UCR-suite pipeline for whole matching).

The paper's UCR-suite discussion (Section 2) covers both ED and DTW; this
scan is the DTW counterpart of :class:`repro.baselines.pscan.PScan`:

1. compute the query's Keogh envelope once;
2. per chunk, LB_Keogh filters candidates against the best-so-far;
3. survivors go through banded batch DTW with the best-so-far as an
   early-abandoning cutoff.

Exactness follows from LB_Keogh ≤ DTW and the DP abandoning rule.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.query import QueryAnswer, QueryProfile
from repro.obs import timed_profile
from repro.core.results import ResultSet
from repro.distance.dtw import (
    dtw_distance_batch,
    dtw_envelope,
    lb_keogh,
    resolve_window,
)
from repro.storage.dataset import Dataset
from repro.types import DISTANCE_DTYPE


class DtwScan:
    """Exact k-NN under constrained DTW by a filtered sequential scan."""

    name = "DTW scan"

    def __init__(
        self,
        data: Union[np.ndarray, Dataset],
        window: int | float | None = None,
        chunk_size: int = 1024,
    ) -> None:
        self.dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        self.window = resolve_window(self.dataset.series_length, window)
        self.chunk_size = chunk_size
        self.num_series = self.dataset.num_series
        self.build_seconds = 0.0

    def knn(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        query64 = np.asarray(query, dtype=DISTANCE_DTYPE)
        lower, upper = dtw_envelope(query64, self.window)
        results = ResultSet(k)
        profile = QueryProfile()
        filtered = 0

        with timed_profile(
            profile, path="dtw-scan", io_stats=self.dataset.stats, k=k
        ):
            for start, chunk in self.dataset.iter_batches(self.chunk_size):
                profile.series_accessed += chunk.shape[0]
                cutoff = results.bsf
                bounds = lb_keogh(lower, upper, chunk)
                survivors = np.nonzero(bounds < cutoff)[0]
                filtered += chunk.shape[0] - survivors.shape[0]
                if survivors.shape[0] == 0:
                    continue
                distances = dtw_distance_batch(
                    query64, chunk[survivors], self.window, cutoff=cutoff
                )
                profile.distance_computations += survivors.shape[0]
                alive = np.isfinite(distances)
                if alive.any():
                    positions = start + survivors[alive]
                    results.update_batch(distances[alive], positions)

            profile.candidate_series = self.num_series - filtered
            profile.sax_pruning = (
                filtered / self.num_series if self.num_series else 0.0
            )

        distances, positions = results.items()
        return QueryAnswer(distances, positions, profile)

    @property
    def query_io(self):
        return self.dataset.stats

    def close(self) -> None:
        """The dataset is managed by the caller."""
