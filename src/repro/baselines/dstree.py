"""DSTree* — the optimized DSTree (Wang et al., 2013) baseline.

DSTree intertwines EAPCA segmentation and indexing in an unbalanced binary
tree.  The two structural differences from Hercules that this module keeps
faithful, because they drive the paper's comparisons:

* **Internal synopses are maintained during building.**  Every insert
  updates the statistics of each node on the root-to-leaf path.  In the
  parallel variant DSTree*P (Figure 12a) workers must lock those nodes,
  which is exactly the synchronization cost Hercules' deferred
  index-writing phase removes.

* **Leaf data lives in per-leaf files.**  We emulate that with one heap
  file holding each leaf's series as a contiguous extent *in leaf-creation
  order* — visiting leaves during search therefore seeks all over the
  file, unlike Hercules' inorder LRDFile.

Query answering is the classic DSTree exact search: descend to the query's
own leaf for an initial best-so-far, then a best-first priority-queue
search over LB_EAPCA, reading each surviving leaf's file.  Single-threaded
(DSTree* is the best single-core method in the paper's taxonomy).
"""

from __future__ import annotations

import heapq
import itertools
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.node import Node, synopsis_from_stats
from repro.core.query import QueryAnswer, QueryProfile
from repro.obs import timed_profile
from repro.core.results import ResultSet
from repro.core.split import choose_split
from repro.distance.euclidean import early_abandon_squared
from repro.errors import ConfigError, StorageError
from repro.storage.dataset import Dataset
from repro.storage.files import SeriesFile
from repro.storage.iostats import IOStats
from repro.summarization.eapca import Segmentation, SeriesSketch
from repro.types import SERIES_DTYPE


@dataclass(frozen=True)
class DSTreeConfig:
    """Tunables of the DSTree* baseline (paper defaults, scaled)."""

    leaf_capacity: int = 100
    initial_segments: int = 4
    #: DSTree*P: number of parallel insert threads (1 = DSTree*).
    num_build_threads: int = 1

    def __post_init__(self) -> None:
        if self.leaf_capacity < 2:
            raise ConfigError(f"leaf_capacity must be >= 2, got {self.leaf_capacity}")
        if self.initial_segments < 1:
            raise ConfigError(
                f"initial_segments must be >= 1, got {self.initial_segments}"
            )
        if self.num_build_threads < 1:
            raise ConfigError(
                f"num_build_threads must be >= 1, got {self.num_build_threads}"
            )


class DSTreeIndex:
    """A built DSTree* index ready for exact k-NN queries."""

    name = "DSTree*"

    def __init__(
        self,
        root: Node,
        config: DSTreeConfig,
        heap: SeriesFile,
        num_series: int,
        build_seconds: float,
        directory: Path,
        owns_directory: bool,
    ) -> None:
        self.root = root
        self.config = config
        self._heap = heap
        self.num_series = num_series
        self.build_seconds = build_seconds
        self.directory = directory
        self._owns_directory = owns_directory
        self.num_leaves = sum(1 for _ in root.iter_leaves_inorder())

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: Union[np.ndarray, Dataset],
        config: Optional[DSTreeConfig] = None,
        directory: Optional[Union[str, Path]] = None,
        stats: Optional[IOStats] = None,
    ) -> "DSTreeIndex":
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        if dataset.num_series == 0:
            raise ConfigError("cannot index an empty dataset")
        config = config if config is not None else DSTreeConfig()
        owns_directory = directory is None
        directory = (
            Path(tempfile.mkdtemp(prefix="dstree-"))
            if directory is None
            else Path(directory)
        )
        directory.mkdir(parents=True, exist_ok=True)

        started = time.perf_counter()
        root = Node(0, Segmentation.uniform(dataset.series_length, config.initial_segments))
        builder = _Builder(root, config, dataset.series_length)
        if config.num_build_threads == 1:
            for _, batch in dataset.iter_batches(4096):
                for row in batch:
                    builder.insert(row)
        else:
            builder.insert_parallel(dataset, config.num_build_threads)

        # Materialize per-leaf "files": one heap file, leaf extents in
        # creation order.
        build_stats = stats if stats is not None else IOStats()
        heap = SeriesFile(
            directory / "dstree-heap.bin", dataset.series_length, stats=build_stats
        )
        for leaf in sorted(root.iter_leaves_inorder(), key=lambda n: n.node_id):
            rows = builder.leaf_rows(leaf)
            leaf.file_position = heap.append_batch(rows) if rows.shape[0] else 0
        heap.flush()
        build_seconds = time.perf_counter() - started

        query_stats = IOStats()
        heap.close()
        heap = SeriesFile(
            directory / "dstree-heap.bin",
            dataset.series_length,
            stats=query_stats,
            read_only=True,
        )
        return cls(
            root=root,
            config=config,
            heap=heap,
            num_series=dataset.num_series,
            build_seconds=build_seconds,
            directory=directory,
            owns_directory=owns_directory,
        )

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "DSTreeIndex":
        """Reopen a DSTree* index persisted by :meth:`save`.

        DSTree shares Hercules' node structure, so the tree rides the
        same HTree binary format; leaf ``file_position`` values address
        the heap file (creation-order extents).
        """
        from repro.storage import htree as htree_module

        directory = Path(directory)
        tree_path = directory / "dstree-tree.bin"
        if not tree_path.exists():
            raise StorageError(f"no DSTree tree file at {tree_path}")
        root, settings = htree_module.load_tree(tree_path)
        config = DSTreeConfig(**settings["config"])
        heap = SeriesFile(
            directory / "dstree-heap.bin",
            settings["series_length"],
            stats=IOStats(),
            read_only=True,
        )
        return cls(
            root=root,
            config=config,
            heap=heap,
            num_series=settings["num_series"],
            build_seconds=0.0,
            directory=directory,
            owns_directory=False,
        )

    def save(self) -> Path:
        """Persist the tree next to the heap file; returns the directory."""
        from dataclasses import asdict

        from repro.storage import htree as htree_module

        settings = {
            "config": asdict(self.config),
            "num_series": self.num_series,
            "series_length": self._heap.series_length,
        }
        htree_module.save_tree(
            self.directory / "dstree-tree.bin", self.root, settings
        )
        return self.directory

    # -- querying --------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        """Exact k-NN: approximate descent, then best-first LB_EAPCA search."""
        sketch = SeriesSketch(np.asarray(query, dtype=np.float64))
        results = ResultSet(k)
        profile = QueryProfile()

        with timed_profile(
            profile, path="dstree-exact", io_stats=self._heap.stats, k=k
        ):
            # Initial answers from the query's own leaf.
            node = self.root
            while not node.is_leaf:
                node = node.route(sketch)
            self._scan_leaf(node, sketch, results, profile)
            first_leaf = node

            # Best-first search over the whole tree.
            pq: list[tuple[float, int, Node]] = []
            tiebreak = itertools.count()
            heapq.heappush(
                pq, (self.root.lower_bound(sketch), next(tiebreak), self.root)
            )
            while pq:
                bound, _, node = heapq.heappop(pq)
                if bound > results.bsf:
                    break
                if node.is_leaf:
                    if node is not first_leaf:
                        self._scan_leaf(node, sketch, results, profile)
                else:
                    for child in (node.left, node.right):
                        child_bound = child.lower_bound(sketch)
                        if child_bound < results.bsf:
                            heapq.heappush(
                                pq, (child_bound, next(tiebreak), child)
                            )

        distances, positions = results.items()
        return QueryAnswer(distances, positions, profile)

    def _scan_leaf(
        self,
        leaf: Node,
        sketch: SeriesSketch,
        results: ResultSet,
        profile: QueryProfile,
    ) -> None:
        if leaf.size == 0:
            return
        data = self._heap.read_range(leaf.file_position, leaf.size)
        profile.series_accessed += leaf.size
        squared, compared = early_abandon_squared(
            sketch.series, data, results.bsf_squared
        )
        profile.distance_computations += leaf.size
        profile.points_compared += compared
        profile.points_total += leaf.size * data.shape[1]
        positions = leaf.file_position + np.arange(leaf.size, dtype=np.int64)
        results.update_batch_squared(squared, positions)

    def get_series(self, position: int) -> np.ndarray:
        return self._heap.read_series(position)

    @property
    def query_io(self) -> IOStats:
        return self._heap.stats

    def close(self) -> None:
        self._heap.close()
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "DSTreeIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Builder:
    """In-memory DSTree construction with path-wide synopsis updates."""

    def __init__(self, root: Node, config: DSTreeConfig, series_length: int) -> None:
        self.root = root
        self.config = config
        self.series_length = series_length
        #: node_id -> list of raw series rows (the per-leaf memory buffer).
        self._buffers: dict[int, list[np.ndarray]] = {root.node_id: []}
        self._next_id = itertools.count(1)
        self._id_lock = threading.Lock()

    def insert(self, series: np.ndarray) -> None:
        """One insert: lock-step descent updating every node on the path.

        This is the DSTree cost model the paper contrasts with Hercules:
        "insert workers need to lock entire paths (from the root to a
        leaf) for updating node statistics" (Section 4.2, Figure 12a).
        """
        row = np.asarray(series, dtype=SERIES_DTYPE)
        sketch = SeriesSketch(row)
        node = self.root
        while True:
            with node.lock:
                means, stds = sketch.stats(node.segmentation)
                node.update_synopsis(means, stds)
                node.size += 1
                if node.is_leaf:
                    buffer = self._buffers[node.node_id]
                    buffer.append(row.copy())
                    if len(buffer) > self.config.leaf_capacity:
                        self._split(node, buffer)
                    return
            # Re-read after releasing: the node cannot un-become internal.
            node = node.route(sketch)

    def insert_parallel(self, dataset: Dataset, num_threads: int) -> None:
        """DSTree*P: the same inserts from several threads."""
        counter = itertools.count()
        counter_lock = threading.Lock()
        errors: list[BaseException] = []
        batch_size = 1024
        total = dataset.num_series

        def worker() -> None:
            try:
                while True:
                    with counter_lock:
                        start = next(counter) * batch_size
                    if start >= total:
                        return
                    batch = dataset.read_batch(
                        start, min(batch_size, total - start)
                    )
                    for row in batch:
                        self.insert(row)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    def _split(self, node: Node, buffer: list[np.ndarray]) -> None:
        """Split an over-capacity leaf (caller holds the node lock)."""
        data = np.stack(buffer)
        decision = choose_split(node.segmentation, data)
        if decision is None:
            return
        policy = decision.policy
        with self._id_lock:
            left_id, right_id = next(self._next_id), next(self._next_id)
        left = Node(left_id, policy.child_segmentation, parent=node)
        right = Node(right_id, policy.child_segmentation, parent=node)
        mask = decision.left_mask
        for child, child_mask in ((left, mask), (right, ~mask)):
            child.synopsis = synopsis_from_stats(
                decision.child_means[child_mask], decision.child_stds[child_mask]
            )
            child.size = int(child_mask.sum())
        self._buffers[left.node_id] = [row for row, m in zip(buffer, mask) if m]
        self._buffers[right.node_id] = [
            row for row, m in zip(buffer, mask) if not m
        ]
        del self._buffers[node.node_id]
        node.left = left
        node.right = right
        node.policy = policy
        node.is_leaf = False

    def leaf_rows(self, leaf: Node) -> np.ndarray:
        rows = self._buffers.get(leaf.node_id, [])
        if not rows:
            return np.empty((0, self.series_length), dtype=SERIES_DTYPE)
        return np.stack(rows)
