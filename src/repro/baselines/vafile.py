"""VA+file — the best skip-sequential baseline (Ferhatosmanoglu et al.).

The VA+file keeps a small in-memory *filter file* of quantized
approximations of every series and scans it entirely for each query; the
raw file is only touched for candidates whose cell lower bound survives
the best-so-far.  The variant evaluated in the paper (following [21])
derives features with the DFT instead of the Karhunen–Loève transform.

Our implementation:

* features — leading orthonormal DFT features (lower-bounding by
  Parseval, see :mod:`repro.summarization.dft`);
* quantization — per-dimension *equi-depth* (quantile) bins, the
  "non-uniform" aspect that gives VA+ its edge over the plain VA-file,
  with a per-dimension bit budget weighted by feature variance;
* search — phase 1 computes cell lower bounds for all series from the
  filter file and seeds the best-so-far with real distances of the k
  smallest-bound candidates; phase 2 visits surviving candidates
  skip-sequentially in file-position order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.prefilter import SignatureArray
from repro.core.query import QueryAnswer, QueryProfile
from repro.obs import timed_profile
from repro.core.results import ResultSet
from repro.distance.euclidean import early_abandon_squared
from repro.errors import ConfigError
from repro.storage.dataset import Dataset
from repro.summarization.dft import DftBasis
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace
from repro.types import DISTANCE_DTYPE


@dataclass(frozen=True)
class VAFileConfig:
    """Tunables of the VA+file baseline."""

    #: Number of DFT feature dimensions (paper: 16 DFT symbols).
    num_features: int = 16
    #: Total quantization bit budget across dimensions.
    total_bits: int = 64
    #: Refinement block size for skip-sequential candidate visits.
    refine_block: int = 64
    #: Filter-file flavour: ``"dft"`` is the classic VA+ filter (DFT
    #: features, equi-depth bins); ``"sax"`` is the fair-contender mode
    #: that reuses Hercules' vectorized whole-array signature screen
    #: (SAX words over ``num_features`` PAA segments at ``sax_bits``
    #: cardinality), so baseline comparisons reflect equal kernel
    #: quality.
    filter_kind: str = "dft"
    #: Per-segment cardinality of the SAX filter, in bits.
    sax_bits: int = 4

    def __post_init__(self) -> None:
        if self.num_features < 1:
            raise ConfigError(f"num_features must be >= 1, got {self.num_features}")
        if self.total_bits < self.num_features:
            raise ConfigError(
                f"total_bits ({self.total_bits}) must allow at least one bit "
                f"per dimension ({self.num_features})"
            )
        if self.refine_block < 1:
            raise ConfigError(f"refine_block must be >= 1, got {self.refine_block}")
        if self.filter_kind not in ("dft", "sax"):
            raise ConfigError(
                f"filter_kind must be 'dft' or 'sax', got {self.filter_kind!r}"
            )
        if not 1 <= self.sax_bits <= 8:
            raise ConfigError(
                f"sax_bits must be in [1, 8], got {self.sax_bits}"
            )


class VAFileIndex:
    """A built VA+file: per-dimension bin edges plus the cell id matrix."""

    name = "VA+file"

    def __init__(
        self,
        dataset: Dataset,
        config: VAFileConfig,
        basis: DftBasis,
        edges: list[np.ndarray],
        cells: np.ndarray,
        build_seconds: float,
        signatures: Optional[SignatureArray] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.basis = basis
        #: ``edges[d]`` has ``bins_d + 1`` boundaries for dimension d.
        self.edges = edges
        #: ``cells[i, d]``: bin index of series i in dimension d.
        self.cells = cells
        #: Fair-contender filter (``filter_kind="sax"``): the same
        #: whole-array signature screen Hercules' pre-filter tier runs.
        self.signatures = signatures
        self.num_series = dataset.num_series
        self.build_seconds = build_seconds

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: Union[np.ndarray, Dataset],
        config: Optional[VAFileConfig] = None,
    ) -> "VAFileIndex":
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        if dataset.num_series == 0:
            raise ConfigError("cannot index an empty dataset")
        config = config if config is not None else VAFileConfig()
        if config.num_features > dataset.series_length:
            raise ConfigError(
                f"num_features={config.num_features} exceeds series length "
                f"{dataset.series_length}"
            )

        started = time.perf_counter()
        basis = DftBasis(dataset.series_length, config.num_features)
        if config.filter_kind == "sax":
            space = SaxSpace(segments=config.num_features)
            symbols = np.empty(
                (dataset.num_series, config.num_features), dtype=np.uint8
            )
            for start, batch in dataset.iter_batches(8192):
                symbols[start : start + batch.shape[0]] = space.symbolize(
                    paa(batch, config.num_features)
                )
            signatures = SignatureArray.from_full_symbols(
                symbols, space, config.sax_bits
            )
            build_seconds = time.perf_counter() - started
            return cls(
                dataset,
                config,
                basis,
                edges=[],
                cells=signatures.reduced.astype(np.int32),
                build_seconds=build_seconds,
                signatures=signatures,
            )
        features = np.empty(
            (dataset.num_series, config.num_features), dtype=DISTANCE_DTYPE
        )
        for start, batch in dataset.iter_batches(8192):
            features[start : start + batch.shape[0]] = basis.transform(batch)

        bits = _allocate_bits(features, config.total_bits)
        edges: list[np.ndarray] = []
        cells = np.empty_like(features, dtype=np.int32)
        for d in range(config.num_features):
            bins = 1 << bits[d]
            dim_edges = _equi_depth_edges(features[:, d], bins)
            edges.append(dim_edges)
            # Duplicate quantiles may merge bins; the effective bin count
            # is len(dim_edges) - 1 and searchsorted output stays within it.
            cells[:, d] = np.searchsorted(
                dim_edges[1:-1], features[:, d], side="right"
            )
        build_seconds = time.perf_counter() - started
        return cls(dataset, config, basis, edges, cells, build_seconds)

    # -- persistence -----------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> "Path":
        """Persist the filter file (edges + cells) and settings.

        Like ParIS+, VA+file owns no raw data; ``open`` re-binds the
        filter to a caller-provided dataset.
        """
        import json
        from dataclasses import asdict
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = {"cells": self.cells}
        for d, dim_edges in enumerate(self.edges):
            arrays[f"edges_{d}"] = dim_edges
        np.savez(directory / "vafile-filter.npz", **arrays)
        (directory / "vafile-meta.json").write_text(
            json.dumps(
                {
                    "config": asdict(self.config),
                    "num_series": self.num_series,
                    "series_length": self.dataset.series_length,
                    "num_dimensions": len(self.edges),
                },
                sort_keys=True,
            )
        )
        return directory

    @classmethod
    def open(
        cls, directory, data: Union[np.ndarray, Dataset]
    ) -> "VAFileIndex":
        """Reopen a saved VA+file over its (caller-provided) dataset."""
        import json
        from pathlib import Path

        from repro.errors import StorageError

        directory = Path(directory)
        meta_path = directory / "vafile-meta.json"
        if not meta_path.exists():
            raise StorageError(f"no VA+file metadata at {meta_path}")
        try:
            meta = json.loads(meta_path.read_text())
            config = VAFileConfig(**meta["config"])
            with np.load(directory / "vafile-filter.npz") as arrays:
                cells = arrays["cells"]
                edges = [
                    arrays[f"edges_{d}"] for d in range(meta["num_dimensions"])
                ]
        except (json.JSONDecodeError, KeyError, OSError, ValueError) as exc:
            raise StorageError(f"{directory}: corrupt VA+file state") from exc
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        if dataset.num_series != meta["num_series"]:
            raise StorageError(
                f"dataset holds {dataset.num_series} series, filter was "
                f"built over {meta['num_series']}"
            )
        basis = DftBasis(meta["series_length"], config.num_features)
        signatures = None
        if config.filter_kind == "sax":
            signatures = SignatureArray(
                cells.astype(np.uint8),
                SaxSpace(segments=config.num_features),
                config.sax_bits,
            )
        return cls(
            dataset, config, basis, edges, cells, build_seconds=0.0,
            signatures=signatures,
        )

    # -- querying --------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        query64 = np.asarray(query, dtype=DISTANCE_DTYPE)
        results = ResultSet(k)
        profile = QueryProfile()
        path = (
            "vafile-sax-skipseq"
            if self.signatures is not None
            else "vafile-skipseq"
        )
        with timed_profile(
            profile, path=path, io_stats=self.dataset.stats, k=k
        ):
            if self.signatures is not None:
                # Fair-contender mode: the whole-array signature screen.
                bounds = self.signatures.lower_bounds(
                    paa(query64, self.config.num_features), query64.shape[0]
                )
            else:
                q_feat = self.basis.transform(query64)
                bounds = self._cell_lower_bounds(q_feat)

            # Phase 1: seed the BSF with real distances of the k most
            # promising candidates (smallest cell lower bounds).
            seed_count = min(self.num_series, k)
            seed = np.argpartition(bounds, seed_count - 1)[:seed_count]
            self._refine(query64, np.sort(seed), results, profile)

            # Phase 2: skip-sequential visit of surviving candidates.
            candidates = np.nonzero(bounds < results.bsf)[0]
            profile.candidate_series = int(candidates.shape[0])
            profile.sax_pruning = (
                1.0 - candidates.shape[0] / self.num_series if self.num_series else 1.0
            )
            if self.signatures is not None:
                profile.prefilter_screened = self.num_series
                profile.prefilter_survivors = int(candidates.shape[0])
            seeded = set(int(p) for p in seed)
            remaining = np.array(
                [p for p in candidates if int(p) not in seeded], dtype=np.int64
            )
            block = self.config.refine_block
            for start in range(0, remaining.shape[0], block):
                chunk = remaining[start : start + block]
                alive = chunk[bounds[chunk] < results.bsf]
                if alive.shape[0]:
                    self._refine(query64, alive, results, profile)

        distances, positions = results.items()
        return QueryAnswer(distances, positions, profile)

    def _cell_lower_bounds(self, q_feat: np.ndarray) -> np.ndarray:
        """Distance from the query to every series' cell, via lookup tables.

        For each dimension a table of squared distances from the query
        feature to each bin is built once (O(bins)), then the N cell ids
        index into it — the standard VA-file trick that keeps the filter
        scan at O(N·d) regardless of bin counts.
        """
        total = np.zeros(self.num_series, dtype=DISTANCE_DTYPE)
        for d, dim_edges in enumerate(self.edges):
            lower = dim_edges[:-1]
            upper = dim_edges[1:]
            gap = np.maximum(
                np.maximum(lower - q_feat[d], q_feat[d] - upper), 0.0
            )
            table = gap * gap
            total += table[self.cells[:, d]]
        return np.sqrt(total)

    def _refine(
        self,
        query: np.ndarray,
        positions: np.ndarray,
        results: ResultSet,
        profile: QueryProfile,
    ) -> None:
        if positions.shape[0] == 0:
            return
        rows = self.dataset.read_positions(positions)
        profile.series_accessed += positions.shape[0]
        squared, compared = early_abandon_squared(
            query, rows, results.bsf_squared
        )
        profile.distance_computations += positions.shape[0]
        profile.points_compared += compared
        profile.points_total += positions.shape[0] * rows.shape[1]
        results.update_batch_squared(squared, positions)

    @property
    def query_io(self):
        """I/O counters of the raw file this index refines against."""
        return self.dataset.stats

    def close(self) -> None:
        """VA+file owns no files; the dataset is managed by the caller."""


def _allocate_bits(features: np.ndarray, total_bits: int) -> np.ndarray:
    """Greedy variance-weighted bit allocation (the VA+ heuristic).

    Every dimension gets one bit; each remaining bit goes to the dimension
    with the largest variance-per-cell, i.e. variance / 4^bits, since one
    extra bit halves the expected cell width.
    """
    d = features.shape[1]
    bits = np.ones(d, dtype=np.int64)
    variances = features.var(axis=0)
    variances = np.maximum(variances, 1e-12)
    remaining = total_bits - d
    cost = variances / 4.0  # variance / 4^bits with bits = 1
    for _ in range(remaining):
        target = int(np.argmax(cost))
        bits[target] += 1
        if bits[target] >= 16:  # cap: 65536 bins per dimension is plenty
            cost[target] = -np.inf
        else:
            cost[target] /= 4.0
    return bits


def _equi_depth_edges(values: np.ndarray, bins: int) -> np.ndarray:
    """Quantile bin edges with open outer boundaries.

    Interior edges are data quantiles (equi-depth); the outer edges are
    pushed to ±inf so every future query value falls in some bin.
    """
    quantiles = np.quantile(values, np.linspace(0.0, 1.0, bins + 1)[1:-1])
    return np.concatenate(([-np.inf], np.unique(quantiles), [np.inf]))


