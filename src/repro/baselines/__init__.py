"""The state-of-the-art methods Hercules is evaluated against (Section 4.1).

* :mod:`repro.baselines.dstree` — DSTree*: the best single-core tree index
  (EAPCA segmentation, adaptive splits), plus its parallelized variant
  DSTree*P used by the ablation study.
* :mod:`repro.baselines.paris` — ParIS+: the iSAX-family multi-core index
  with ADS+SIMS-style query answering.
* :mod:`repro.baselines.vafile` — VA+file: the best skip-sequential method
  (DFT features with non-uniform scalar quantization).
* :mod:`repro.baselines.pscan` — PSCAN: the parallel optimized scan built
  on the UCR-suite Euclidean-distance optimizations.
* :mod:`repro.baselines.scan` — the plain serial scan (the red dotted
  reference line of Figure 9).

All methods answer exact k-NN queries and return the same
:class:`~repro.core.query.QueryAnswer` structure as Hercules, with
identical distances for identical inputs (tested).
"""

from repro.baselines.dstree import DSTreeConfig, DSTreeIndex
from repro.baselines.paris import ParisConfig, ParisIndex
from repro.baselines.vafile import VAFileConfig, VAFileIndex
from repro.baselines.pscan import PScan
from repro.baselines.scan import SerialScan
from repro.baselines.dtw_scan import DtwScan

__all__ = [
    "DSTreeConfig",
    "DSTreeIndex",
    "ParisConfig",
    "ParisIndex",
    "VAFileConfig",
    "VAFileIndex",
    "PScan",
    "SerialScan",
    "DtwScan",
]
