"""ParIS+ — the iSAX-family multi-core baseline (Peng et al., TKDE 2021).

ParIS+ builds its tree over iSAX *summaries* only: raw series are touched
once to compute their words, inserts and node splits never move raw data,
and leaves store positions into the original dataset file.  That makes
index construction very cheap — and query answering expensive on hard
workloads, because the raw data of a query's neighbors is scattered
anywhere in the dataset file (Figure 11's discussion).

The index tree has a large root fanout: one child per cardinality-1 iSAX
word (up to 2^16 subtrees, materialized on demand), below which a node
splits by refining one segment's cardinality one bit at a time.

Query answering follows the parallel ADS+SIMS scheme the paper describes
(Section 2): an approximate tree probe seeds the best-so-far with real
distances from one leaf, then worker threads scan the complete in-memory
summary array with LB_SAX, and surviving candidates are refined
skip-sequentially against the raw file in position order.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.query import QueryAnswer, QueryProfile
from repro.core.results import ResultSet
from repro.distance.euclidean import early_abandon_squared
from repro.errors import ConfigError
from repro.obs import timed_profile
from repro.storage.dataset import Dataset
from repro.summarization.paa import paa
from repro.summarization.sax import SaxSpace
from repro.types import DISTANCE_DTYPE


@dataclass(frozen=True)
class ParisConfig:
    """Tunables of the ParIS+ baseline (paper defaults, scaled)."""

    #: Leaf size (paper uses 2K at 100M-series scale).
    leaf_capacity: int = 20
    sax_segments: int = 16
    sax_alphabet: int = 256
    #: Threads building root subtrees in parallel (the iSAX-family trick
    #: the paper contrasts with Hercules: each root subtree is built by a
    #: single thread, so no synchronization is needed).
    num_build_threads: int = 4
    num_query_threads: int = 4

    def __post_init__(self) -> None:
        if self.leaf_capacity < 1:
            raise ConfigError(f"leaf_capacity must be >= 1, got {self.leaf_capacity}")
        if self.num_build_threads < 1:
            raise ConfigError(
                f"num_build_threads must be >= 1, got {self.num_build_threads}"
            )
        if self.sax_segments < 1:
            raise ConfigError(f"sax_segments must be >= 1, got {self.sax_segments}")
        if not 2 <= self.sax_alphabet <= 256:
            raise ConfigError(
                f"sax_alphabet must be in [2, 256], got {self.sax_alphabet}"
            )
        if self.num_query_threads < 1:
            raise ConfigError(
                f"num_query_threads must be >= 1, got {self.num_query_threads}"
            )


class _IsaxNode:
    """A node of the ParIS+ tree, identified by per-segment (value, bits)."""

    __slots__ = ("values", "bits", "positions", "left", "right", "split_segment")

    def __init__(self, values: np.ndarray, bits: np.ndarray) -> None:
        self.values = values
        self.bits = bits
        self.positions: list[int] = []  # leaf payload: dataset positions
        self.left: Optional[_IsaxNode] = None
        self.right: Optional[_IsaxNode] = None
        self.split_segment: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def route_bit(self, word: np.ndarray) -> int:
        """Next bit of the split segment for a full-resolution word."""
        seg = self.split_segment
        b = self.bits[seg]
        return (int(word[seg]) >> (8 - (b + 1))) & 1


class ParisIndex:
    """A built ParIS+ index answering exact k-NN queries."""

    name = "ParIS+"

    def __init__(
        self,
        dataset: Dataset,
        config: ParisConfig,
        roots: dict[tuple, _IsaxNode],
        words: np.ndarray,
        build_seconds: float,
    ) -> None:
        self.dataset = dataset
        self.config = config
        self.sax_space = SaxSpace(config.sax_segments, config.sax_alphabet)
        self._roots = roots
        self.words = words  # (N, segments) uint8, in dataset order
        self.num_series = dataset.num_series
        self.build_seconds = build_seconds

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        data: Union[np.ndarray, Dataset],
        config: Optional[ParisConfig] = None,
    ) -> "ParisIndex":
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        if dataset.num_series == 0:
            raise ConfigError("cannot index an empty dataset")
        config = config if config is not None else ParisConfig()
        space = SaxSpace(config.sax_segments, config.sax_alphabet)

        started = time.perf_counter()
        words = np.empty(
            (dataset.num_series, config.sax_segments), dtype=np.uint8
        )
        for start, batch in dataset.iter_batches(8192):
            words[start : start + batch.shape[0]] = space.symbolize(
                paa(batch, config.sax_segments)
            )

        # Partition by cardinality-1 root word: each group is one root
        # subtree, independent of every other — the parallelization unit.
        top_bits = (words >> 7).astype(np.int64)
        weights = 1 << np.arange(config.sax_segments, dtype=np.int64)
        packed = top_bits @ weights
        order = np.argsort(packed, kind="stable")
        boundaries = np.nonzero(np.diff(packed[order]))[0] + 1
        groups = np.split(order, boundaries)

        roots: dict[tuple, _IsaxNode] = {}
        group_nodes: list[tuple[_IsaxNode, np.ndarray]] = []
        for group in groups:
            first = words[group[0]]
            key = tuple(int(v) for v in first >> 7)
            node = _IsaxNode(
                values=np.asarray(key, dtype=np.int64),
                bits=np.ones(config.sax_segments, dtype=np.int64),
            )
            roots[key] = node
            group_nodes.append((node, group))

        def build_subtree(node: _IsaxNode, positions: np.ndarray) -> None:
            for position in positions:
                _insert_word(
                    node, words[position], int(position), words,
                    config.leaf_capacity,
                )

        if config.num_build_threads == 1 or len(group_nodes) <= 1:
            for node, group in group_nodes:
                build_subtree(node, group)
        else:
            claim = itertools.count()
            claim_lock = threading.Lock()
            errors: list[BaseException] = []

            def worker() -> None:
                try:
                    while True:
                        with claim_lock:
                            index = next(claim)
                        if index >= len(group_nodes):
                            return
                        node, group = group_nodes[index]
                        build_subtree(node, group)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, daemon=True)
                for _ in range(config.num_build_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]

        build_seconds = time.perf_counter() - started
        return cls(dataset, config, roots, words, build_seconds)

    # -- persistence -----------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> Path:
        """Persist the summary array and tree next to nothing else.

        ParIS+ owns no raw data (queries refine against the original
        dataset file), so a saved index is just the words matrix and the
        struct-packed tree; ``open`` re-binds it to a dataset.
        """
        import json
        import struct
        from dataclasses import asdict

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "paris-words.npy", self.words)

        header = json.dumps(
            {
                "config": asdict(self.config),
                "num_series": self.num_series,
                "series_length": self.dataset.series_length,
            },
            sort_keys=True,
        ).encode("utf-8")
        chunks = [struct.pack("<8sI", b"PARISTRE", len(header)), header]
        chunks.append(struct.pack("<I", len(self._roots)))

        def pack_node(node: _IsaxNode) -> None:
            chunks.append(
                struct.pack("<Bh", int(node.is_leaf), node.split_segment)
            )
            chunks.append(node.values.astype("<i2").tobytes())
            chunks.append(node.bits.astype("<u1").tobytes())
            if node.is_leaf:
                positions = np.asarray(node.positions, dtype="<u4")
                chunks.append(struct.pack("<I", positions.shape[0]))
                chunks.append(positions.tobytes())
            else:
                pack_node(node.left)
                pack_node(node.right)

        for node in self._roots.values():
            pack_node(node)
        (directory / "paris-tree.bin").write_bytes(b"".join(chunks))
        return directory

    @classmethod
    def open(
        cls, directory: Union[str, Path], data: Union[np.ndarray, Dataset]
    ) -> "ParisIndex":
        """Reopen a saved ParIS+ index over its (caller-provided) dataset."""
        import json
        import struct

        from repro.errors import StorageError

        directory = Path(directory)
        tree_path = directory / "paris-tree.bin"
        if not tree_path.exists():
            raise StorageError(f"no ParIS+ tree file at {tree_path}")
        blob = tree_path.read_bytes()
        try:
            magic, header_len = struct.unpack_from("<8sI", blob, 0)
            if magic != b"PARISTRE":
                raise StorageError(f"{tree_path}: bad magic {magic!r}")
            offset = struct.calcsize("<8sI")
            meta = json.loads(blob[offset : offset + header_len].decode("utf-8"))
            offset += header_len
            config = ParisConfig(**meta["config"])
            m = config.sax_segments
            (num_roots,) = struct.unpack_from("<I", blob, offset)
            offset += 4

            def unpack_node(offset: int) -> tuple[_IsaxNode, int]:
                is_leaf, split_segment = struct.unpack_from("<Bh", blob, offset)
                offset += struct.calcsize("<Bh")
                values = np.frombuffer(blob, "<i2", m, offset).astype(np.int64)
                offset += 2 * m
                bits = np.frombuffer(blob, "<u1", m, offset).astype(np.int64)
                offset += m
                node = _IsaxNode(values, bits)
                node.split_segment = int(split_segment)
                if is_leaf:
                    (count,) = struct.unpack_from("<I", blob, offset)
                    offset += 4
                    node.positions = [
                        int(p)
                        for p in np.frombuffer(blob, "<u4", count, offset)
                    ]
                    offset += 4 * count
                else:
                    node.left, offset = unpack_node(offset)
                    node.right, offset = unpack_node(offset)
                return node, offset

            roots: dict[tuple, _IsaxNode] = {}
            for _ in range(num_roots):
                node, offset = unpack_node(offset)
                roots[tuple(int(v) for v in node.values)] = node
            if offset != len(blob):
                raise StorageError(f"{tree_path}: trailing bytes")
        except StorageError:
            raise
        except (struct.error, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise StorageError(f"{tree_path}: corrupt ParIS+ tree") from exc

        words = np.load(directory / "paris-words.npy")
        dataset = data if isinstance(data, Dataset) else Dataset.from_array(data)
        if dataset.num_series != meta["num_series"]:
            raise StorageError(
                f"dataset holds {dataset.num_series} series, index was "
                f"built over {meta['num_series']}"
            )
        return cls(dataset, config, roots, words, build_seconds=0.0)

    # -- querying --------------------------------------------------------------

    def knn(self, query: np.ndarray, k: int = 1) -> QueryAnswer:
        query64 = np.asarray(query, dtype=DISTANCE_DTYPE)
        results = ResultSet(k)
        profile = QueryProfile()
        space = self.sax_space
        with timed_profile(
            profile, path="paris-sims", io_stats=self.dataset.stats, k=k
        ):

            query_paa = paa(query64, space.segments)
            query_word = space.symbolize(query_paa)

            # Phase 1 (approximate): probe the leaf matching the query's word.
            leaf = self._probe_leaf(query_word, query_paa)
            if leaf is not None and leaf.positions:
                self._refine_positions(
                    query64, np.sort(np.asarray(leaf.positions)), results, profile
                )
            profile.approx_leaves = 1 if leaf is not None else 0

            # Phase 2 (SIMS): parallel LB_SAX over the whole summary array.
            bsf = results.bsf
            n = self.num_series
            bounds = np.empty(n, dtype=DISTANCE_DTYPE)
            num_threads = self.config.num_query_threads
            ranges = np.array_split(np.arange(n), num_threads)
            errors: list[BaseException] = []

            def sims_worker(rows: np.ndarray) -> None:
                try:
                    if rows.shape[0]:
                        bounds[rows] = space.mindist(
                            query_paa, self.words[rows], query64.shape[0]
                        )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            if num_threads == 1:
                sims_worker(ranges[0])
            else:
                threads = [
                    threading.Thread(target=sims_worker, args=(rows,), daemon=True)
                    for rows in ranges
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            if errors:
                raise errors[0]

            candidates = np.nonzero(bounds < bsf)[0]
            profile.candidate_series = int(candidates.shape[0])
            profile.sax_pruning = 1.0 - candidates.shape[0] / n if n else 1.0

            # Phase 3: skip-sequential refinement — visit candidates in file
            # position order, re-checking each block's LB against the
            # improving BSF first.
            self._refine_filtered(
                query64, np.sort(candidates), bounds, results, profile
            )

        distances, positions = results.items()
        return QueryAnswer(distances, positions, profile)

    def _probe_leaf(
        self, query_word: np.ndarray, query_paa: np.ndarray
    ) -> Optional[_IsaxNode]:
        key = tuple((query_word >> 7).tolist())
        node = self._roots.get(key)
        if node is None:
            # Out-of-dataset queries can land on an unmaterialized root
            # word; probe the root subtree with the smallest LB_SAX to
            # the query so the approximate phase still seeds a useful
            # best-so-far, as ADS's approximate search does.
            node = min(
                self._roots.values(),
                key=lambda root: self._node_mindist(root, query_paa),
                default=None,
            )
            if node is None:
                return None
        while not node.is_leaf:
            node = node.right if node.route_bit(query_word) else node.left
        return node

    def _node_mindist(self, node: _IsaxNode, query_paa: np.ndarray) -> float:
        """LB_SAX between the query and a tree node's iSAX region."""
        space = self.sax_space
        edges = np.concatenate(([-np.inf], space.breakpoints, [np.inf]))
        full = space.alphabet_size
        width = full >> node.bits  # region width per segment
        lower = edges[node.values * width]
        upper = edges[(node.values + 1) * width]
        gap = np.maximum(np.maximum(lower - query_paa, query_paa - upper), 0.0)
        scale = self.dataset.series_length / space.segments
        return float(np.sqrt(scale * np.dot(gap, gap)))

    def _refine_positions(
        self,
        query: np.ndarray,
        positions: np.ndarray,
        results: ResultSet,
        profile: QueryProfile,
    ) -> None:
        """Real distances for the given sorted dataset positions."""
        if positions.shape[0] == 0:
            return
        rows = self.dataset.read_positions(positions)
        profile.series_accessed += positions.shape[0]
        squared, compared = early_abandon_squared(
            query, rows, results.bsf_squared
        )
        profile.distance_computations += positions.shape[0]
        profile.points_compared += compared
        profile.points_total += positions.shape[0] * rows.shape[1]
        results.update_batch_squared(squared, positions)

    def _refine_filtered(
        self,
        query: np.ndarray,
        positions: np.ndarray,
        bounds: np.ndarray,
        results: ResultSet,
        profile: QueryProfile,
        block: int = 64,
    ) -> None:
        """Skip-sequential refinement with per-block BSF re-checks."""
        for start in range(0, positions.shape[0], block):
            chunk = positions[start : start + block]
            alive = chunk[bounds[chunk] < results.bsf]
            if alive.shape[0] == 0:
                continue
            self._refine_positions(query, alive, results, profile)

    @property
    def query_io(self):
        """I/O counters of the raw file this index refines against."""
        return self.dataset.stats

    @property
    def num_leaves(self) -> int:
        count = 0
        for root in self._roots.values():
            stack = [root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    count += 1
                else:
                    stack.extend((node.left, node.right))
        return count

    def close(self) -> None:
        """ParIS+ owns no files; the dataset is managed by the caller."""


def _insert_word(
    node: _IsaxNode,
    word: np.ndarray,
    position: int,
    words: np.ndarray,
    leaf_capacity: int,
) -> None:
    while not node.is_leaf:
        node = node.right if node.route_bit(word) else node.left
    node.positions.append(position)
    if len(node.positions) > leaf_capacity:
        _split_leaf(node, words, leaf_capacity)


def _split_leaf(node: _IsaxNode, words: np.ndarray, leaf_capacity: int) -> None:
    """Refine one segment's cardinality by a bit and redistribute.

    The segment is chosen as the refinable one whose next bit best
    balances the two children (the iSAX2.0 heuristic distils to this).
    If every refinable segment sends all words to one side, refinement
    recurses one level deeper; fully-refined leaves stay over capacity.
    """
    leaf_words = words[np.asarray(node.positions)]
    best_segment = -1
    best_balance = -1.0
    for segment in range(node.bits.shape[0]):
        b = node.bits[segment]
        if b >= 8:
            continue
        bit = (leaf_words[:, segment].astype(np.int64) >> (8 - (b + 1))) & 1
        ones = int(bit.sum())
        balance = min(ones, leaf_words.shape[0] - ones)
        if balance > best_balance:
            best_balance = balance
            best_segment = segment
    if best_segment < 0 or best_balance == 0:
        return  # cannot separate (identical words): oversized leaf

    node.split_segment = best_segment
    b = node.bits[best_segment]
    child_bits = node.bits.copy()
    child_bits[best_segment] = b + 1
    left_values = node.values.copy()
    left_values[best_segment] = node.values[best_segment] << 1
    right_values = left_values.copy()
    right_values[best_segment] += 1
    node.left = _IsaxNode(left_values, child_bits)
    node.right = _IsaxNode(right_values, child_bits)

    positions = node.positions
    node.positions = []
    for position in positions:
        _insert_word(node, words[position], position, words, leaf_capacity)


