"""Design-choice ablations beyond Figure 12.

The paper justifies several design decisions with experiments it only
summarizes in prose; this module makes them measurable:

* **Buffer management** (Section 3.3.1): "allocating a large memory
  buffer (HBuffer) at the start of index creation ... is more efficient
  than having each leaf pre-allocate its own memory buffer and release it
  when it is split, especially during the beginning of index construction
  where splits occur frequently."  :func:`build_with_per_leaf_buffers`
  implements the rejected design — every leaf owns a growable array that
  dies with the leaf on every split — so the two allocation strategies
  can be compared on identical inserts.

* **Query-parameter sensitivity** (Section 4.2: "the EAPCA_TH and SAX_TH
  thresholds are tuned experimentally, and exhibit a stable behavior").
  :func:`threshold_sensitivity` sweeps both thresholds and ``L_max``
  across workload difficulties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import HerculesConfig
from repro.core.node import Node, synopsis_from_stats
from repro.core.split import choose_split
from repro.eval.metrics import WorkloadResult
from repro.summarization.eapca import Segmentation, SeriesSketch
from repro.types import SERIES_DTYPE


@dataclass
class PerLeafBuildReport:
    """Outcome of a per-leaf-buffer build (the rejected design)."""

    seconds: float
    num_leaves: int
    #: Buffer (re)allocations performed — the overhead HBuffer avoids.
    allocations: int
    #: Series copied between buffers during splits.
    copies: int


class _GrowableLeafBuffer:
    """The per-leaf buffer of the rejected design: grows by doubling."""

    __slots__ = ("data", "count", "allocations", "copies")

    def __init__(self, series_length: int, initial: int = 16) -> None:
        self.data = np.empty((initial, series_length), dtype=SERIES_DTYPE)
        self.count = 0
        self.allocations = 1
        self.copies = 0

    def append(self, row: np.ndarray) -> None:
        if self.count == self.data.shape[0]:
            grown = np.empty(
                (self.data.shape[0] * 2, self.data.shape[1]), dtype=SERIES_DTYPE
            )
            grown[: self.count] = self.data
            self.allocations += 1
            self.copies += self.count
            self.data = grown
        self.data[self.count] = row
        self.count += 1

    def rows(self) -> np.ndarray:
        return self.data[: self.count]


def build_with_per_leaf_buffers(
    data: np.ndarray, config: HerculesConfig
) -> PerLeafBuildReport:
    """Build a Hercules-style tree where each leaf allocates its own buffer.

    Single-threaded by design: the point is to isolate the allocation and
    copy behaviour of the per-leaf strategy, which the paper rejected in
    favour of HBuffer; the insert and split logic are otherwise identical
    to the production path.
    """
    arr = np.ascontiguousarray(data, dtype=SERIES_DTYPE)
    started = time.perf_counter()
    root = Node(0, Segmentation.uniform(arr.shape[1], config.initial_segments))
    buffers: dict[int, _GrowableLeafBuffer] = {
        0: _GrowableLeafBuffer(arr.shape[1])
    }
    allocations = 1
    copies = 0
    next_id = 1

    for row in arr:
        sketch = SeriesSketch(row)
        node = root
        while not node.is_leaf:
            node = node.route(sketch)
        means, stds = sketch.stats(node.segmentation)
        node.update_synopsis(means, stds)
        buffer = buffers[node.node_id]
        buffer.append(row)
        node.size += 1
        if node.size <= config.leaf_capacity:
            continue

        decision = choose_split(node.segmentation, buffer.rows())
        if decision is None:
            continue
        policy = decision.policy
        mask = decision.left_mask
        left = Node(next_id, policy.child_segmentation, parent=node)
        right = Node(next_id + 1, policy.child_segmentation, parent=node)
        next_id += 2
        for child, child_mask in ((left, mask), (right, ~mask)):
            child.synopsis = synopsis_from_stats(
                decision.child_means[child_mask],
                decision.child_stds[child_mask],
            )
            child.size = int(child_mask.sum())
            # The rejected design: a fresh allocation per child, parent
            # buffer released, every series copied across.
            child_buffer = _GrowableLeafBuffer(
                arr.shape[1], initial=max(config.leaf_capacity, 16)
            )
            for child_row in buffer.rows()[child_mask]:
                child_buffer.append(child_row)
            child_buffer.copies += child.size
            buffers[child.node_id] = child_buffer
            allocations += child_buffer.allocations
            copies += child_buffer.copies
        allocations += buffer.allocations - 1  # growth of the dead buffer
        copies += buffer.copies
        del buffers[node.node_id]
        node.left, node.right = left, right
        node.policy = policy
        node.is_leaf = False

    seconds = time.perf_counter() - started
    return PerLeafBuildReport(
        seconds=seconds,
        num_leaves=sum(1 for _ in root.iter_leaves_inorder()),
        allocations=allocations,
        copies=copies,
    )


def threshold_sensitivity(
    index,
    workloads: dict[str, np.ndarray],
    eapca_values: Sequence[float] = (0.0, 0.25, 0.5, 0.9),
    sax_values: Sequence[float] = (0.0, 0.5, 0.9),
    k: int = 1,
) -> list[dict]:
    """Sweep EAPCA_TH and SAX_TH over a built index and query workloads.

    Returns one record per (workload, eapca_th, sax_th) combination with
    the mean query time, accessed fraction, and the access paths taken —
    the paper's claim is that performance is *stable* around the chosen
    (0.25, 0.50) point.
    """
    records: list[dict] = []
    for label, queries in workloads.items():
        for eapca_th in eapca_values:
            for sax_th in sax_values:
                config = index.config.with_options(
                    eapca_th=eapca_th, sax_th=sax_th
                )
                profiles = []
                for query in queries:
                    profiles.append(index.knn(query, k=k, config=config).profile)
                result = WorkloadResult(
                    method=f"eapca={eapca_th},sax={sax_th}",
                    workload=label,
                    k=k,
                    num_series=index.num_series,
                    build_seconds=0.0,
                    profiles=profiles,
                )
                records.append(
                    {
                        "workload": label,
                        "eapca_th": eapca_th,
                        "sax_th": sax_th,
                        "avg_query_seconds": result.avg_query_seconds,
                        "avg_data_accessed": result.avg_data_accessed,
                        "paths": sorted({p.path for p in profiles}),
                    }
                )
    return records
