"""Fixed-width table formatting for benchmark output.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], indent: str = "  "
) -> str:
    """Render rows as a fixed-width text table with a rule under headers."""
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> None:
    print(f"\n{title}")
    print(format_table(headers, rows))
