"""One entry point per paper figure (Section 4.2).

Every function generates its (scaled) workload, builds the methods being
compared, runs the queries, prints the same rows the paper's figure
plots, and returns the structured results for EXPERIMENTS.md and for
assertions in the benchmark suite.

Scaling note: datasets here are 10³-10⁵ series (the paper's are 10⁸); all
comparisons are *between methods on identical inputs*, so the figures'
shapes — who wins, by what factor, where crossovers fall — are the
reproduction target, not absolute numbers.  Hardware-independent work
metrics (% data accessed, distance computations) are printed next to
every timing.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.eval.metrics import WorkloadResult, run_workload
from repro.eval.methods import ALL_METHODS, build_method
from repro.eval.report import print_table
from repro.storage.dataset import Dataset
from repro.workloads.datasets import make_analog
from repro.workloads.generators import (
    ALL_WORKLOADS,
    make_query_workloads,
    random_walks,
)

#: Methods compared in the scalability experiments (scans are added where
#: the corresponding figure includes them).
INDEX_METHODS: tuple[str, ...] = ("Hercules", "DSTree*", "ParIS+", "VA+file")


@dataclass
class ExperimentResult:
    """Structured output of one experiment run."""

    figure: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    #: method results keyed by arbitrary experiment coordinates.
    raw: dict = field(default_factory=dict)

    def print(self, title: str) -> None:
        print_table(title, self.headers, self.rows)

    def to_json(self) -> dict:
        """JSON-ready form: rows plus per-coordinate cost summaries.

        ``raw`` keys are tuples; they become "/"-joined strings.  Values
        that are :class:`WorkloadResult` collapse to their ``summary()``
        dict; everything else (plain floats) passes through.
        """
        raw = {}
        for key, value in self.raw.items():
            name = (
                "/".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            )
            raw[name] = (
                value.summary() if isinstance(value, WorkloadResult) else value
            )
        return {
            "figure": self.figure,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "raw": raw,
        }


class _Workspace:
    """A temp directory for datasets and index files, cleaned on exit."""

    def __init__(self, base: Optional[Path] = None) -> None:
        self._owns = base is None
        self.path = Path(tempfile.mkdtemp(prefix="repro-exp-")) if base is None else Path(base)
        self.path.mkdir(parents=True, exist_ok=True)

    def dataset(self, name: str, data: np.ndarray) -> Dataset:
        return Dataset.write(self.path / f"{name}.bin", data)

    def subdir(self, name: str) -> Path:
        sub = self.path / name
        sub.mkdir(parents=True, exist_ok=True)
        return sub

    def cleanup(self) -> None:
        if self._owns:
            shutil.rmtree(self.path, ignore_errors=True)


# ---------------------------------------------------------------------------
# Figure 6: scalability with increasing dataset size (idx + queries)
# ---------------------------------------------------------------------------


def figure6_dataset_size(
    sizes: Sequence[int] = (1_000, 2_500, 5_000, 10_000),
    length: int = 64,
    num_queries: int = 20,
    methods: Sequence[str] = INDEX_METHODS,
    seed: int = 6,
    verbose: bool = True,
) -> ExperimentResult:
    """Combined index construction + query answering vs dataset size.

    Mirrors Figures 6a (index + 100 queries) and 6b (index + 10K queries,
    extrapolated with the paper's trim-and-scale procedure) over synthetic
    random walks with random-walk 1NN queries.
    """
    result = ExperimentResult(
        figure="fig6",
        headers=[
            "size",
            "method",
            "build_s",
            "query_s(total)",
            "idx+q_s",
            "idx+10Kq_s",
        ],
    )
    workspace = _Workspace()
    try:
        queries = random_walks(num_queries, length, seed=seed + 999)
        for size in sizes:
            data = random_walks(size, length, seed=seed)
            dataset = workspace.dataset(f"synth-{size}", data)
            for name in methods:
                built = build_method(
                    name, dataset, directory=workspace.subdir(f"{name}-{size}")
                )
                wl = run_workload(built.method, queries, k=1, workload="synth")
                wl.build_seconds = built.build_seconds
                result.raw[(size, name)] = wl
                result.rows.append(
                    [
                        size,
                        name,
                        built.build_seconds,
                        wl.total_query_seconds,
                        wl.combined_seconds(),
                        wl.combined_seconds(10_000),
                    ]
                )
                built.close()
            dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print("Figure 6: scalability with dataset size (1NN, synth)")
    return result


# ---------------------------------------------------------------------------
# Figure 7: very large datasets — average query time incl. PSCAN
# ---------------------------------------------------------------------------


def figure7_large_datasets(
    sizes: Sequence[int] = (20_000, 30_000),
    length: int = 64,
    num_queries: int = 10,
    seed: int = 7,
    verbose: bool = True,
) -> ExperimentResult:
    """Average 1NN query time on the largest datasets, scans included.

    Mirrors Figure 7 (1TB / 1.5TB in the paper): Hercules must beat every
    index *and* the optimized parallel scan.
    """
    methods = INDEX_METHODS + ("PSCAN",)
    result = ExperimentResult(
        figure="fig7",
        headers=["size", "method", "avg_query_s", "modeled_io_s", "avg_data_accessed"],
    )
    workspace = _Workspace()
    try:
        queries = random_walks(num_queries, length, seed=seed + 999)
        for size in sizes:
            data = random_walks(size, length, seed=seed)
            dataset = workspace.dataset(f"synth-{size}", data)
            for name in methods:
                built = build_method(
                    name, dataset, directory=workspace.subdir(f"{name}-{size}")
                )
                wl = run_workload(built.method, queries, k=1, workload="synth")
                result.raw[(size, name)] = wl
                result.rows.append(
                    [
                        size,
                        name,
                        wl.avg_query_seconds,
                        wl.avg_modeled_io_seconds,
                        wl.avg_data_accessed,
                    ]
                )
                built.close()
            dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print("Figure 7: average 1NN query time on large datasets")
    return result


# ---------------------------------------------------------------------------
# Figure 8: scalability with increasing series length
# ---------------------------------------------------------------------------


def figure8_series_length(
    lengths: Sequence[int] = (64, 128, 256, 512),
    size: int = 4_000,
    num_queries: int = 10,
    seed: int = 8,
    verbose: bool = True,
) -> ExperimentResult:
    """Average 1NN query time as the series length grows (Figure 8)."""
    methods = INDEX_METHODS + ("PSCAN",)
    result = ExperimentResult(
        figure="fig8",
        headers=["length", "method", "avg_query_s", "modeled_io_s", "avg_data_accessed"],
    )
    workspace = _Workspace()
    try:
        for length in lengths:
            data = random_walks(size, length, seed=seed)
            queries = random_walks(num_queries, length, seed=seed + 999)
            dataset = workspace.dataset(f"synth-{length}", data)
            for name in methods:
                built = build_method(
                    name, dataset, directory=workspace.subdir(f"{name}-{length}")
                )
                wl = run_workload(built.method, queries, k=1, workload="synth")
                result.raw[(length, name)] = wl
                result.rows.append(
                    [
                        length,
                        name,
                        wl.avg_query_seconds,
                        wl.avg_modeled_io_seconds,
                        wl.avg_data_accessed,
                    ]
                )
                built.close()
            dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print("Figure 8: scalability with series length (1NN, synth)")
    return result


# ---------------------------------------------------------------------------
# Figures 9 & 10: query difficulty over the real-dataset analogs
# ---------------------------------------------------------------------------


def difficulty_experiment(
    datasets: Sequence[str] = ("SALD", "Seismic", "Deep"),
    size: int = 4_000,
    num_queries: int = 20,
    methods: Sequence[str] = INDEX_METHODS,
    include_serial_scan: bool = True,
    workloads: Sequence[str] = ALL_WORKLOADS,
    k: int = 1,
    seed: int = 9,
    verbose: bool = True,
) -> ExperimentResult:
    """Shared run behind Figures 9 and 10.

    For each dataset analog and workload of increasing difficulty, every
    method answers the same exact k-NN queries; rows report build time,
    per-query time, and % of data accessed.  The serial scan provides the
    red-dotted reference line of Figure 9.
    """
    result = ExperimentResult(
        figure="fig9-10",
        headers=[
            "dataset",
            "workload",
            "method",
            "build_s",
            "avg_query_s",
            "modeled_io_s",
            "idx+q_s",
            "avg_data_accessed",
        ],
    )
    workspace = _Workspace()
    method_names = tuple(methods) + (
        ("SerialScan",) if include_serial_scan else ()
    )
    try:
        for dataset_name in datasets:
            raw = make_analog(dataset_name, size, seed=seed)
            indexable, query_sets = make_query_workloads(
                raw, queries_per_workload=num_queries, seed=seed
            )
            dataset = workspace.dataset(dataset_name, indexable)
            built = {
                name: build_method(
                    name,
                    dataset,
                    directory=workspace.subdir(f"{name}-{dataset_name}"),
                )
                for name in method_names
            }
            for label in workloads:
                workload = query_sets[label]
                for name in method_names:
                    wl = run_workload(
                        built[name].method,
                        workload.queries,
                        k=k,
                        workload=label,
                    )
                    wl.build_seconds = built[name].build_seconds
                    result.raw[(dataset_name, label, name)] = wl
                    result.rows.append(
                        [
                            dataset_name,
                            label,
                            name,
                            wl.build_seconds,
                            wl.avg_query_seconds,
                            wl.avg_modeled_io_seconds,
                            wl.combined_seconds(),
                            wl.avg_data_accessed,
                        ]
                    )
            for method in built.values():
                method.close()
            dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print(
            "Figures 9-10: scalability with query difficulty "
            "(real-dataset analogs)"
        )
    return result


# ---------------------------------------------------------------------------
# Figure 11: scalability with increasing k
# ---------------------------------------------------------------------------


def figure11_knn_k(
    ks: Sequence[int] = (1, 5, 10, 25, 50, 100),
    size: int = 4_000,
    length: int = 64,
    num_queries: int = 10,
    methods: Sequence[str] = INDEX_METHODS,
    seed: int = 11,
    verbose: bool = True,
) -> ExperimentResult:
    """k-NN query time and data accessed vs k on the 5% workload."""
    result = ExperimentResult(
        figure="fig11",
        headers=["k", "method", "avg_query_s", "modeled_io_s", "avg_data_accessed"],
    )
    workspace = _Workspace()
    try:
        raw = random_walks(size, length, seed=seed)
        indexable, query_sets = make_query_workloads(
            raw, queries_per_workload=num_queries, seed=seed, include_ood=False
        )
        queries = query_sets["5%"].queries
        dataset = workspace.dataset("synth", indexable)
        built = {
            name: build_method(
                name, dataset, directory=workspace.subdir(name)
            )
            for name in methods
        }
        for k in ks:
            for name in methods:
                wl = run_workload(
                    built[name].method, queries, k=k, workload="5%"
                )
                result.raw[(k, name)] = wl
                result.rows.append(
                    [
                        k,
                        name,
                        wl.avg_query_seconds,
                        wl.avg_modeled_io_seconds,
                        wl.avg_data_accessed,
                    ]
                )
        for method in built.values():
            method.close()
        dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print("Figure 11: scalability with increasing k (5% workload)")
    return result


# ---------------------------------------------------------------------------
# Figure 12: ablation study
# ---------------------------------------------------------------------------


def figure12_ablation_indexing(
    size: int = 4_000,
    num_threads: int = 4,
    seed: int = 12,
    verbose: bool = True,
) -> ExperimentResult:
    """Figure 12a: index construction for DSTree*, DSTree*P, NoWPara, Hercules."""
    from repro.core import HerculesIndex

    from repro.eval.methods import hercules_config

    result = ExperimentResult(
        figure="fig12a",
        headers=["variant", "build_s", "write_s", "total_s"],
    )
    workspace = _Workspace()
    try:
        data = make_analog("Deep", size, seed=seed)
        dataset = workspace.dataset("deep", data)

        for variant in ("DSTree*", "DSTree*P"):
            built = build_method(
                variant,
                dataset,
                directory=workspace.subdir(variant.lower().replace("*", "")),
                num_threads=num_threads,
            )
            result.raw[variant] = built.build_seconds
            result.rows.append([variant, built.build_seconds, 0.0, built.build_seconds])
            built.close()

        for variant, parallel_writing in (("NoWPara", False), ("Hercules", True)):
            config = hercules_config(
                dataset.num_series,
                num_threads=num_threads,
                parallel_writing=parallel_writing,
            )
            index = HerculesIndex.build(
                dataset, config, directory=workspace.subdir(variant.lower())
            )
            report = index.build_report
            result.raw[variant] = report.total_seconds
            result.rows.append(
                [
                    variant,
                    report.build_seconds,
                    report.write_seconds,
                    report.total_seconds,
                ]
            )
            index.close()
        dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print("Figure 12a: ablation — index construction (Deep analog)")
    return result


def figure12_ablation_query(
    size: int = 4_000,
    num_queries: int = 15,
    workloads: Sequence[str] = ("1%", "5%", "ood"),
    seed: int = 12,
    verbose: bool = True,
) -> ExperimentResult:
    """Figure 12b: query answering for NoSAX, NoPara, NoThresh, Hercules."""
    from repro.core import HerculesIndex

    from repro.eval.methods import hercules_config

    variants = {
        "Hercules": {},
        "NoSAX": {"use_sax": False},
        "NoPara": {"num_query_threads": 1},
        "NoThresh": {"adaptive_thresholds": False},
    }
    result = ExperimentResult(
        figure="fig12b",
        headers=[
            "workload",
            "variant",
            "avg_query_s",
            "approx_s",
            "refine_s",
            "avg_data_accessed",
        ],
    )
    workspace = _Workspace()
    try:
        raw = make_analog("Deep", size, seed=seed)
        indexable, query_sets = make_query_workloads(
            raw, queries_per_workload=num_queries, seed=seed
        )
        dataset = workspace.dataset("deep", indexable)
        config = hercules_config(dataset.num_series)
        index = HerculesIndex.build(
            dataset, config, directory=workspace.subdir("hercules")
        )
        for label in workloads:
            queries = query_sets[label].queries
            for variant, overrides in variants.items():
                variant_config = config.with_options(**overrides)
                profiles = []
                for query in queries:
                    answer = index.knn(query, k=1, config=variant_config)
                    profiles.append(answer.profile)
                wl = WorkloadResult(
                    method=variant,
                    workload=label,
                    k=1,
                    num_series=index.num_series,
                    build_seconds=index.build_report.total_seconds,
                    profiles=profiles,
                )
                result.raw[(label, variant)] = wl
                result.rows.append(
                    [
                        label,
                        variant,
                        wl.avg_query_seconds,
                        float(np.mean([p.time_approx for p in profiles])),
                        float(np.mean([p.time_refine for p in profiles])),
                        wl.avg_data_accessed,
                    ]
                )
        index.close()
        dataset.close()
    finally:
        workspace.cleanup()
    if verbose:
        result.print("Figure 12b: ablation — query answering (Deep analog)")
    return result


#: Used by benchmarks to iterate all methods including scans.
ALL_METHOD_NAMES = ALL_METHODS
