"""Benchmark regression diffing for the REPRO_BENCH_JSON dumps.

The benchmark harnesses dump ``{"figures": [{figure, title, headers,
rows, raw}, ...]}`` files (BENCH_query.json, BENCH_build.json, ...).
``repro bench-diff baseline.json fresh.json`` compares the two and
fails when a gated metric regressed by more than the threshold.

Only metrics that diff cleanly across machines are gated by default —
ratios, counts, modeled costs, throughput *relative* numbers — because
CI runners are not the committer's laptop.  Wall-clock metrics
(``*_seconds`` and ``*_ms`` that are not ``modeled_*``) join the gate
with ``--include-timings``, which makes sense when baseline and fresh
come from the same run environment (the CI job produces both).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["BenchDiffReport", "DiffRow", "diff_bench_files", "diff_figures"]

#: Key fragments whose metrics are better when they go *up*.
_HIGHER_BETTER = (
    "per_s",
    "per_sec",
    "speedup",
    "hit_rate",
    "throughput",
    "qps",
    "abandoned",  # fraction of points early-abandoning saved
)

#: Key fragments whose metrics are better when they go *down* and are
#: hardware-independent (modeled costs, operation/work counts).
_LOWER_BETTER = (
    "modeled",
    "read_calls",
    "write_calls",
    "random_seeks",
    "bytes_read",
    "bytes_written",
    "distance_computations",
    "series_accessed",
    "data_accessed",
    "lrd_read",
)


def _is_timing(key: str) -> bool:
    lowered = key.lower()
    if "modeled" in lowered:
        return False
    return "seconds" in lowered or lowered.endswith("_ms")


def _direction(key: str, include_timings: bool) -> Optional[str]:
    """'up', 'down', or None when the metric is not gated."""
    lowered = key.lower()
    if any(tag in lowered for tag in _HIGHER_BETTER):
        return "up"
    if _is_timing(lowered):
        return "down" if include_timings else None
    if any(tag in lowered for tag in _LOWER_BETTER):
        return "down"
    return None


def _flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], out)
    elif isinstance(value, bool):
        return
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)


def flatten_figures(doc: dict) -> dict:
    """``{figure}.{raw path}`` → value, for every numeric raw metric."""
    out: dict = {}
    for figure in doc.get("figures", []):
        name = figure.get("figure", "figure")
        _flatten(name, figure.get("raw", {}), out)
    return out


@dataclass
class DiffRow:
    key: str
    baseline: float
    fresh: float
    direction: str
    #: Relative change in the *bad* direction; negative means improved.
    regression: float

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0
        return (self.fresh - self.baseline) / self.baseline * 100.0


@dataclass
class BenchDiffReport:
    threshold: float
    rows: list = field(default_factory=list)
    regressions: list = field(default_factory=list)
    skipped: int = 0
    missing: list = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"bench-diff: {len(self.rows)} gated metrics, "
            f"threshold {self.threshold:.0%} "
            f"({self.skipped} ungated values skipped)"
        ]
        width = max((len(r.key) for r in self.rows), default=10)
        for row in sorted(self.rows, key=lambda r: -r.regression):
            verdict = (
                "REGRESSED" if row.regression > self.threshold else "ok"
            )
            arrow = "higher=better" if row.direction == "up" else "lower=better"
            lines.append(
                f"  {row.key:<{width}}  {row.baseline:>12.4f} -> "
                f"{row.fresh:>12.4f}  ({row.delta_pct:+7.2f}%, {arrow})  "
                f"{verdict}"
            )
        for key in self.missing:
            lines.append(f"  {key}: present in baseline, missing in fresh")
        if self.regressions:
            worst = max(r.regression for r in self.regressions)
            lines.append(
                f"FAIL: {len(self.regressions)} metric(s) regressed beyond "
                f"{self.threshold:.0%} (worst {worst:+.1%})"
            )
        else:
            lines.append("PASS: no gated metric regressed beyond threshold")
        return "\n".join(lines)


def diff_figures(
    baseline: dict,
    fresh: dict,
    threshold: float = 0.2,
    include_timings: bool = False,
    ignore: Iterable[str] = (),
) -> BenchDiffReport:
    """Diff two parsed REPRO_BENCH_JSON documents."""
    ignore = tuple(ignore)
    base_flat = flatten_figures(baseline)
    fresh_flat = flatten_figures(fresh)
    report = BenchDiffReport(threshold=threshold)
    for key, base_value in sorted(base_flat.items()):
        if any(fragment in key for fragment in ignore):
            report.skipped += 1
            continue
        direction = _direction(key, include_timings)
        if direction is None:
            report.skipped += 1
            continue
        if key not in fresh_flat:
            report.missing.append(key)
            continue
        fresh_value = fresh_flat[key]
        if base_value == 0.0:
            # Nothing to be relative to; a zero baseline count can only
            # regress by becoming nonzero in the bad direction.
            regression = (
                1.0 if direction == "down" and fresh_value > 0.0 else 0.0
            )
        elif direction == "up":
            regression = (base_value - fresh_value) / abs(base_value)
        else:
            regression = (fresh_value - base_value) / abs(base_value)
        row = DiffRow(
            key=key,
            baseline=base_value,
            fresh=fresh_value,
            direction=direction,
            regression=regression,
        )
        report.rows.append(row)
        if regression > threshold:
            report.regressions.append(row)
    return report


def diff_bench_files(
    baseline_path,
    fresh_path,
    threshold: float = 0.2,
    include_timings: bool = False,
    ignore: Iterable[str] = (),
) -> BenchDiffReport:
    """Diff two REPRO_BENCH_JSON files on disk."""
    with open(Path(baseline_path), encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(Path(fresh_path), encoding="utf-8") as fh:
        fresh = json.load(fh)
    return diff_figures(
        baseline,
        fresh,
        threshold=threshold,
        include_timings=include_timings,
        ignore=ignore,
    )
