"""Quality measures for approximate query answering.

The paper's conclusion points at approximate answering with and without
quality guarantees (following its ref [22], which established these
measures for data-series search).  This module implements the standard
ones so the approximate modes can be evaluated systematically:

* **recall@k** — fraction of the exact k-NN set retrieved;
* **approximation error** — ratio of the returned k-th distance to the
  exact k-th distance (1.0 = exact, the paper's ε bounds this by 1+ε);
* **mean average precision (MAP@k)** — order-sensitive quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import QueryAnswer


@dataclass(frozen=True)
class ApproximationQuality:
    """Quality of one approximate answer against the exact answer."""

    recall: float
    approximation_error: float
    average_precision: float


def answer_quality(approx: QueryAnswer, exact: QueryAnswer) -> ApproximationQuality:
    """Compare an approximate answer to the exact one for the same query."""
    if exact.k == 0:
        raise ValueError("exact answer is empty")
    exact_set = set(int(p) for p in exact.positions)

    hits = np.isin(approx.positions, exact.positions)
    recall = float(hits.sum()) / exact.k

    exact_kth = float(exact.distances[-1])
    if exact_kth == 0.0:
        error = 1.0 if float(approx.distances[-1]) == 0.0 else np.inf
    else:
        error = float(approx.distances[-1]) / exact_kth

    # Average precision over the approximate ranking.
    precisions = []
    found = 0
    for rank, position in enumerate(approx.positions, start=1):
        if int(position) in exact_set:
            found += 1
            precisions.append(found / rank)
    average_precision = (
        float(np.mean(precisions)) if precisions else 0.0
    )
    return ApproximationQuality(
        recall=recall,
        approximation_error=error,
        average_precision=average_precision,
    )


@dataclass
class QualitySummary:
    """Aggregated quality over a workload of queries."""

    mean_recall: float
    mean_approximation_error: float
    worst_approximation_error: float
    mean_average_precision: float
    count: int

    @classmethod
    def from_qualities(
        cls, qualities: list[ApproximationQuality]
    ) -> "QualitySummary":
        if not qualities:
            raise ValueError("no qualities to summarize")
        errors = [q.approximation_error for q in qualities]
        return cls(
            mean_recall=float(np.mean([q.recall for q in qualities])),
            mean_approximation_error=float(np.mean(errors)),
            worst_approximation_error=float(np.max(errors)),
            mean_average_precision=float(
                np.mean([q.average_precision for q in qualities])
            ),
            count=len(qualities),
        )


def evaluate_approximate(
    index,
    queries: np.ndarray,
    k: int,
    *,
    l_max: int | None = None,
    epsilon: float | None = None,
) -> QualitySummary:
    """Run a workload in an approximate mode and measure its quality.

    Exactly one of ``l_max`` (approximate-only mode) or ``epsilon``
    (ε-approximate mode) must be given; exact answers are computed with
    the index's own configuration.
    """
    if (l_max is None) == (epsilon is None):
        raise ValueError("provide exactly one of l_max= or epsilon=")
    qualities: list[ApproximationQuality] = []
    for query in queries:
        exact = index.knn(query, k=k)
        if l_max is not None:
            approx = index.knn_approx(query, k=k, l_max=l_max)
        else:
            config = index.config.with_options(epsilon=epsilon)
            approx = index.knn(query, k=k, config=config)
        qualities.append(answer_quality(approx, exact))
    return QualitySummary.from_qualities(qualities)
