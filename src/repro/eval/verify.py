"""Self-verification: prove a method's answers against brute force.

The paper's baseline claim — "all algorithms return the same, exact
results" (Section 1) — deserves a tool users can run against their own
data and configurations, not just our test suite.  ``verify_exactness``
checks any method against a brute-force scan; ``verify_epsilon`` checks
the ε-approximate guarantee.  Both return structured reports and are
exposed through ``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.euclidean import batch_squared_euclidean


@dataclass
class VerificationReport:
    """Outcome of one verification sweep."""

    method: str
    queries_checked: int
    k: int
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def format(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"{status}: {self.method} over {self.queries_checked} queries "
            f"(k={self.k})"
        ]
        lines.extend(f"  - {failure}" for failure in self.failures[:10])
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        return "\n".join(lines)


def _brute_force(data: np.ndarray, query: np.ndarray, k: int) -> np.ndarray:
    distances = np.sqrt(batch_squared_euclidean(query, data))
    return np.sort(distances)[: min(k, distances.shape[0])]


def verify_exactness(
    method,
    data: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    atol: float = 1e-5,
) -> VerificationReport:
    """Check that ``method.knn`` matches brute force on every query."""
    report = VerificationReport(
        method=getattr(method, "name", method.__class__.__name__),
        queries_checked=int(np.asarray(queries).shape[0]),
        k=k,
    )
    for i, query in enumerate(np.asarray(queries)):
        expected = _brute_force(data, query, k)
        answer = method.knn(query, k=k)
        if answer.distances.shape[0] != expected.shape[0]:
            report.failures.append(
                f"query {i}: returned {answer.distances.shape[0]} answers, "
                f"expected {expected.shape[0]}"
            )
            continue
        gap = np.abs(answer.distances - expected)
        if np.any(gap > atol):
            worst = int(np.argmax(gap))
            report.failures.append(
                f"query {i}: rank {worst} distance "
                f"{answer.distances[worst]:.6f} != exact "
                f"{expected[worst]:.6f}"
            )
    return report


def verify_epsilon(
    index,
    data: np.ndarray,
    queries: np.ndarray,
    epsilon: float,
    k: int = 10,
    atol: float = 1e-6,
) -> VerificationReport:
    """Check the ε-approximate guarantee: reported kth ≤ (1+ε)·exact kth."""
    config = index.config.with_options(epsilon=epsilon)
    report = VerificationReport(
        method=f"Hercules(epsilon={epsilon})",
        queries_checked=int(np.asarray(queries).shape[0]),
        k=k,
    )
    for i, query in enumerate(np.asarray(queries)):
        expected = _brute_force(data, query, k)
        answer = index.knn(query, k=k, config=config)
        bound = (1.0 + epsilon) * expected[-1] + atol
        if answer.distances[-1] > bound:
            report.failures.append(
                f"query {i}: kth distance {answer.distances[-1]:.6f} "
                f"exceeds guarantee {bound:.6f}"
            )
    return report
