"""Experiment harnesses reproducing the paper's evaluation (Section 4).

* :mod:`repro.eval.metrics` — per-workload measurement and the paper's
  10K-query extrapolation procedure.
* :mod:`repro.eval.methods` — a registry building every method over one
  dataset with comparable, scaled default parameters.
* :mod:`repro.eval.report` — fixed-width table formatting for benchmark
  output.
* :mod:`repro.eval.experiments` — one entry point per paper figure
  (Figures 6-12), each returning structured results and printing the rows
  the paper reports.
"""

from repro.eval.metrics import WorkloadResult, extrapolate_10k, run_workload
from repro.eval.methods import ALL_METHODS, BuiltMethod, build_method, build_methods
from repro.eval.report import format_table, print_table

__all__ = [
    "WorkloadResult",
    "extrapolate_10k",
    "run_workload",
    "ALL_METHODS",
    "BuiltMethod",
    "build_method",
    "build_methods",
    "format_table",
    "print_table",
]
