"""Workload measurement and aggregation (Section 4.1, "Measures").

The paper reports wall-clock time and the percentage of accessed data,
averaged per query.  For 10K-query workloads it extrapolates: discard the
5 best and 5 worst of the 100 measured queries and multiply the mean of
the remaining 90 by 10,000 ("Procedure").  Both are implemented here,
alongside hardware-independent work counters (distance computations,
series accessed) that this reproduction reports next to every timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.query import QueryProfile
from repro.obs import record_batch_stats, record_profile


@dataclass
class WorkloadResult:
    """All per-query profiles of one (method, workload) pair."""

    method: str
    workload: str
    k: int
    num_series: int
    build_seconds: float
    profiles: list[QueryProfile] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.profiles)

    @property
    def total_query_seconds(self) -> float:
        return float(sum(p.time_total for p in self.profiles))

    @property
    def avg_query_seconds(self) -> float:
        return self.total_query_seconds / max(self.query_count, 1)

    @property
    def avg_data_accessed(self) -> float:
        """Mean fraction of the dataset's raw series read per query."""
        if not self.profiles:
            return 0.0
        fractions = [
            p.data_accessed_fraction(self.num_series) for p in self.profiles
        ]
        return float(np.mean(fractions))

    @property
    def avg_distance_computations(self) -> float:
        if not self.profiles:
            return 0.0
        return float(np.mean([p.distance_computations for p in self.profiles]))

    @property
    def avg_abandoned_fraction(self) -> float:
        """Mean fraction of candidate points skipped by early abandoning.

        Only queries that recorded point counts participate; zero when
        none did (e.g. a method not yet on the blocked kernel).
        """
        fractions = [
            p.abandoned_fraction for p in self.profiles if p.points_total
        ]
        if not fractions:
            return 0.0
        return float(np.mean(fractions))

    @property
    def avg_prefilter_pruned_fraction(self) -> float | None:
        """Mean fraction of series pruned by the whole-array signature
        screen, over queries where it ran; ``None`` when the pre-filter
        tier never engaged (tier off, or every BSF stayed infinite).
        """
        fractions = [
            p.prefilter_pruned_fraction
            for p in self.profiles
            if p.prefilter_pruned_fraction is not None
        ]
        if not fractions:
            return None
        return float(np.mean(fractions))

    @property
    def avg_cache_hit_rate(self) -> float | None:
        """Mean leaf-cache hit rate over queries that touched the cache.

        ``None`` when no query recorded a cache lookup (cache disabled).
        """
        rates = [
            p.cache_hit_rate
            for p in self.profiles
            if p.cache_hit_rate is not None
        ]
        if not rates:
            return None
        return float(np.mean(rates))

    @property
    def avg_modeled_io_seconds(self) -> float:
        """Mean per-query disk time projected onto the paper's hardware.

        Zero when queries ran against in-memory data (no I/O captured).
        """
        if not self.profiles:
            return 0.0
        return float(np.mean([p.modeled_io_seconds() for p in self.profiles]))

    @property
    def avg_modeled_query_seconds(self) -> float:
        """Measured CPU wall-clock plus modeled disk time, per query."""
        return self.avg_query_seconds + self.avg_modeled_io_seconds

    def modeled_io_at_scale(self, byte_scale: float) -> float:
        """Mean modeled disk time with volumes mapped to the paper's scale.

        See :meth:`repro.core.query.QueryProfile.modeled_io_seconds` for
        the ``byte_scale`` semantics (paper leaf size / our leaf size).
        """
        if not self.profiles:
            return 0.0
        return float(
            np.mean(
                [p.modeled_io_seconds(byte_scale=byte_scale) for p in self.profiles]
            )
        )

    def extrapolated_seconds(self, num_queries: int = 10_000) -> float:
        """The paper's trimmed extrapolation to a large workload."""
        times = [p.time_total for p in self.profiles]
        return extrapolate_10k(times, num_queries)

    def combined_seconds(self, num_queries: int | None = None) -> float:
        """Index construction plus query answering (Figures 6 and 9)."""
        if num_queries is None:
            return self.build_seconds + self.total_query_seconds
        return self.build_seconds + self.extrapolated_seconds(num_queries)

    def summary(self) -> dict:
        """JSON-ready cost summary (hardware-independent counters included)."""
        return {
            "method": self.method,
            "workload": self.workload,
            "k": self.k,
            "num_series": self.num_series,
            "query_count": self.query_count,
            "build_seconds": self.build_seconds,
            "avg_query_seconds": self.avg_query_seconds,
            "avg_data_accessed": self.avg_data_accessed,
            "avg_distance_computations": self.avg_distance_computations,
            "avg_abandoned_fraction": self.avg_abandoned_fraction,
            "avg_cache_hit_rate": self.avg_cache_hit_rate,
            "prefilter_pruned_fraction": self.avg_prefilter_pruned_fraction,
            "avg_modeled_io_seconds": self.avg_modeled_io_seconds,
            "avg_modeled_query_seconds": self.avg_modeled_query_seconds,
        }


def extrapolate_10k(
    times: list[float], num_queries: int = 10_000, trim: int = 5
) -> float:
    """Trim the ``trim`` best/worst measurements, scale the mean.

    With fewer than ``2 * trim + 1`` measurements the trim shrinks to
    what the sample allows (the paper always has 100).
    """
    if not times:
        return 0.0
    values = np.sort(np.asarray(times, dtype=np.float64))
    effective_trim = min(trim, (values.shape[0] - 1) // 2)
    if effective_trim:
        values = values[effective_trim:-effective_trim]
    return float(values.mean() * num_queries)


def run_workload(
    method,
    queries: np.ndarray,
    k: int,
    *,
    workload: str = "",
    num_series: int | None = None,
    registry=None,
    batched: bool = False,
) -> WorkloadResult:
    """Run every query through ``method.knn`` and collect the profiles.

    Queries run one after another ("asynchronously" in the paper's sense:
    each must finish before the next is known), with caches staying warm
    between consecutive queries exactly as in the paper's procedure.

    ``batched=True`` instead hands the whole workload to
    ``method.knn_batch`` at once — the batched engine's shared-leaf
    scans and one-pass screening amortize work across queries, and its
    per-query answers are value-identical to the serial loop.  Per-query
    profiles are collected the same way; when the batch reports
    execution stats (a :class:`~repro.core.batch_query.BatchAnswer`)
    they land in the registry under ``query.batch.*``.

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) receives per-query
    metrics via :func:`repro.obs.record_profile` when given.
    """
    result = WorkloadResult(
        method=getattr(method, "name", method.__class__.__name__),
        workload=workload,
        k=k,
        num_series=(
            num_series if num_series is not None else method.num_series
        ),
        build_seconds=getattr(method, "build_seconds", 0.0) or _build_seconds(method),
    )
    if batched:
        batch = method.knn_batch(np.asarray(queries), k=k)
        for answer in batch:
            if registry is not None:
                record_profile(
                    registry, answer.profile, num_series=result.num_series
                )
            result.profiles.append(answer.profile)
        stats = getattr(batch, "stats", None)
        if registry is not None and stats is not None:
            record_batch_stats(registry, stats)
        return result
    io_stats = getattr(method, "query_io", None)
    for query in queries:
        before = io_stats.snapshot() if io_stats is not None else None
        answer = method.knn(query, k=k)
        # knn implementations now fill profile.io themselves; the snapshot
        # here is a fallback for methods that do not.
        if before is not None and answer.profile.io is None:
            answer.profile.io = io_stats.snapshot() - before
        if registry is not None:
            record_profile(registry, answer.profile, num_series=result.num_series)
        result.profiles.append(answer.profile)
    return result


def _build_seconds(method) -> float:
    report = getattr(method, "build_report", None)
    if report is not None:
        return report.total_seconds
    return 0.0
