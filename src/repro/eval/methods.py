"""Method registry: build every evaluated method over one dataset.

Default parameters follow Section 4.2's tuning, scaled from the paper's
100M-series datasets to this reproduction's 10³-10⁵-series datasets while
preserving the ratios that matter: Hercules and DSTree* share one leaf
size (the paper uses 100K for both), ParIS+ uses a much smaller leaf (2K
in the paper — iSAX trees fragment), VA+file keeps 16 feature dimensions,
and Hercules' query thresholds stay at the paper's EAPCA_TH = 0.25 and
SAX_TH = 0.50.  ``L_max`` scales with the expected leaf count so the
approximate phase visits a comparable *fraction* of leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.baselines import (
    DSTreeConfig,
    DSTreeIndex,
    ParisConfig,
    ParisIndex,
    PScan,
    SerialScan,
    VAFileConfig,
    VAFileIndex,
)
from repro.core import HerculesConfig, HerculesIndex, ShardedIndex
from repro.errors import ConfigError
from repro.storage.dataset import Dataset

#: Display order used by every table (Hercules last like the paper plots
#: list it, scans at the end as reference lines).
ALL_METHODS: tuple[str, ...] = (
    "Hercules",
    "DSTree*",
    "ParIS+",
    "VA+file",
    "PSCAN",
    "SerialScan",
)

#: Leaf size shared by Hercules and DSTree* (paper: 100K, scaled).
DEFAULT_LEAF = 100
#: ParIS+ leaf size (paper: 2K — fifty times smaller than DSTree's).
DEFAULT_PARIS_LEAF = 20
#: Threads used by the parallel methods (paper: 24).
DEFAULT_THREADS = 4


@dataclass
class BuiltMethod:
    """A constructed method plus its measured build time."""

    name: str
    method: object
    build_seconds: float

    def knn(self, query: np.ndarray, k: int = 1):
        return self.method.knn(query, k=k)

    def close(self) -> None:
        self.method.close()


def scaled_l_max(num_series: int, leaf_capacity: int = DEFAULT_LEAF) -> int:
    """L_max covering ~4% of expected leaves (80 of ~2000 in the paper)."""
    expected_leaves = max(num_series // leaf_capacity, 1)
    return max(int(round(expected_leaves * 0.04)), 2)


def hercules_config(
    num_series: int,
    leaf_capacity: int = DEFAULT_LEAF,
    num_threads: int = DEFAULT_THREADS,
    **overrides,
) -> HerculesConfig:
    """Scaled Hercules defaults for an experiment dataset."""
    options = dict(
        leaf_capacity=leaf_capacity,
        num_build_threads=num_threads,
        db_size=max(min(512, num_series // 4), 1),
        flush_threshold=max((num_threads - 1) // 2, 1),
        num_write_threads=max(num_threads // 2, 1),
        num_query_threads=num_threads,
        l_max=scaled_l_max(num_series, leaf_capacity),
    )
    options.update(overrides)
    return HerculesConfig(**options)


def build_method(
    name: str,
    dataset: Union[np.ndarray, Dataset],
    directory: Optional[Union[str, Path]] = None,
    leaf_capacity: int = DEFAULT_LEAF,
    num_threads: int = DEFAULT_THREADS,
    cache_bytes: int = 0,
    num_shards: int = 1,
    shard_workers: Optional[int] = None,
    prefilter: bool = False,
    prefilter_bits: int = 4,
    **overrides,
) -> BuiltMethod:
    """Build one method by display name with scaled defaults.

    ``overrides`` are forwarded to the method's own configuration type.
    ``cache_bytes`` sizes the leaf-block LRU of methods that support one
    (currently Hercules); 0 disables caching.  ``num_shards`` > 1 builds
    Hercules as a shard-parallel index (scatter-gather queries; other
    methods are unaffected), with ``shard_workers`` build processes.
    ``prefilter`` turns on the in-RAM signature screen for the methods
    that have one: Hercules' whole-array pre-filter tier, and VA+file's
    "fair contender" SAX filter (same screen kernel, so the baseline
    comparison reflects equal kernel quality).
    """
    num_series = (
        dataset.num_series if isinstance(dataset, Dataset) else dataset.shape[0]
    )
    if name == "Hercules":
        config = hercules_config(
            num_series,
            leaf_capacity,
            num_threads,
            num_shards=num_shards,
            shard_workers=shard_workers,
            prefilter=prefilter,
            prefilter_bits=prefilter_bits,
            **overrides,
        )
        index = ShardedIndex.build(
            dataset,
            config,
            directory=Path(directory) / "hercules" if directory else None,
            cache_bytes=cache_bytes,
        )
        return BuiltMethod(name, index, index.build_report.total_seconds)
    if name == "DSTree*":
        config = DSTreeConfig(leaf_capacity=leaf_capacity, **overrides)
        index = DSTreeIndex.build(
            dataset,
            config,
            directory=Path(directory) / "dstree" if directory else None,
        )
        return BuiltMethod(name, index, index.build_seconds)
    if name == "DSTree*P":
        config = DSTreeConfig(
            leaf_capacity=leaf_capacity,
            num_build_threads=overrides.pop("num_build_threads", num_threads),
            **overrides,
        )
        index = DSTreeIndex.build(
            dataset,
            config,
            directory=Path(directory) / "dstreep" if directory else None,
        )
        return BuiltMethod(name, index, index.build_seconds)
    if name == "ParIS+":
        config = ParisConfig(
            leaf_capacity=overrides.pop("leaf_capacity", DEFAULT_PARIS_LEAF),
            num_query_threads=overrides.pop("num_query_threads", num_threads),
            **overrides,
        )
        index = ParisIndex.build(dataset, config)
        return BuiltMethod(name, index, index.build_seconds)
    if name == "VA+file":
        if prefilter:
            overrides.setdefault("filter_kind", "sax")
            overrides.setdefault("sax_bits", prefilter_bits)
        config = VAFileConfig(**overrides)
        index = VAFileIndex.build(dataset, config)
        return BuiltMethod(name, index, index.build_seconds)
    if name == "PSCAN":
        scan = PScan(dataset, num_threads=num_threads, **overrides)
        return BuiltMethod(name, scan, 0.0)
    if name == "SerialScan":
        scan = SerialScan(dataset, **overrides)
        return BuiltMethod(name, scan, 0.0)
    raise ConfigError(f"unknown method {name!r}; choose from {ALL_METHODS}")


def build_methods(
    dataset: Union[np.ndarray, Dataset],
    names: Optional[tuple[str, ...]] = None,
    directory: Optional[Union[str, Path]] = None,
    **kwargs,
) -> dict[str, BuiltMethod]:
    """Build several methods over the same dataset."""
    names = names if names is not None else ALL_METHODS
    return {
        name: build_method(name, dataset, directory=directory, **kwargs)
        for name in names
    }
