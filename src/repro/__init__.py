"""repro — a from-scratch reproduction of Hercules (PVLDB 2022).

Hercules is a parallel tree-based index for exact similarity search over
large data-series collections (Echihabi, Fatourou, Zoumpatianos, Palpanas,
Benbrahim; PVLDB 15(10), 2022).  This package implements the index, every
substrate it depends on, and the baselines it is evaluated against.

Quick start::

    import numpy as np
    from repro import HerculesIndex, HerculesConfig

    data = np.random.default_rng(0).standard_normal((10_000, 128)).cumsum(1)
    index = HerculesIndex.build(data.astype(np.float32))
    answer = index.knn(data[0], k=5)
    print(answer.distances, answer.positions)
"""

from repro.core import (
    BuildReport,
    HerculesConfig,
    HerculesIndex,
    QueryAnswer,
    QueryProfile,
    ShardedBuildReport,
    ShardedIndex,
    ShardedQueryAnswer,
    open_index,
)
from repro.errors import (
    ConfigError,
    IndexStateError,
    ReproError,
    ShardError,
    ShardTimeoutError,
    StorageError,
    WorkerSupervisionError,
    WorkloadError,
)
from repro.retry import RetryPolicy
from repro.storage.dataset import Dataset

__version__ = "1.0.0"

__all__ = [
    "HerculesConfig",
    "HerculesIndex",
    "BuildReport",
    "QueryAnswer",
    "QueryProfile",
    "ShardedBuildReport",
    "ShardedIndex",
    "ShardedQueryAnswer",
    "open_index",
    "Dataset",
    "RetryPolicy",
    "ReproError",
    "ConfigError",
    "ShardError",
    "ShardTimeoutError",
    "WorkerSupervisionError",
    "StorageError",
    "IndexStateError",
    "WorkloadError",
    "__version__",
]
